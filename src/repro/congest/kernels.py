"""Whole-round protocol kernels for the vectorized and sharded CONGEST tiers.

The scalar engines (``legacy``, ``fast``) call one Python method per node per
round.  The kernel tiers replace that inner loop entirely: a protocol is
expressed as a :class:`RoundKernel` whose state is a dict of per-node/per-arc
numpy vectors and whose ``round`` function transforms a whole round's
delivered traffic — packed arrays keyed by dense CSR arc slot — with
segmented reductions (min/sum over each node's inbox slice).  No Python loop
runs over nodes or messages inside a round.

Data flow of one round (driven by :func:`repro.congest.engine.run_vectorized`
in-process, or by :func:`repro.congest.engine.run_sharded` across worker
processes):

1. the previous round's :class:`PackedSends` (an arc-slot send mask plus one
   value array per :class:`~repro.congest.message.PayloadSchema` field) is
   *delivered* by gathering through ``csr.rev`` — the message sent on arc
   ``p`` (``i -> j``) lands in receiver-side slot ``rev[p]``;
2. the kernel's ``round(state, inbox, senders, csr, shard)`` is called with
   the delivered slots grouped by receiver (ascending arc slot order, i.e.
   CSR segment order) and returns the next :class:`PackedSends`;
3. the engine accounts messages/words/per-edge bandwidth from the send mask
   with ``bincount`` over ``csr.arc_edge_ids`` — O(#messages) array work,
   with ``payload_size_words`` O(1) per message via the schema.

The ``state`` dict / arc-slot boundary *is* the shard interface: a
:class:`StateSchema` declares which state entries are per-node or per-arc
vectors, and the allocation contract is **shard-local**: ``init(state, csr,
shard)`` allocates row 0 of every declared vector (and of the private send
buffers) at ``shard.node_lo``/``shard.arc_lo``, so a shard worker's declared
state occupies O((n + m) / num_shards) memory, not O(n + m).  Kernels
translate the global node/arc indices of the CSR snapshot to state rows by
subtracting ``shard.node_lo``/``shard.arc_lo``; single-process tiers pass
the degenerate whole-graph shard (both offsets 0), making the vectorized
execution literally the one-shard special case of the sharded one — the
translation is the identity there.  The sharded tier places each shard's
rows in its own shared-memory arena segment and merges them back
bit-for-bit.  A compatibility shim (:func:`invoke_init`) keeps kernels with
the pre-shard ``init(state, csr)`` signature working on the single-process
tiers; such kernels cannot run sharded and fall back to ``vectorized``.

Kernels must be *bit-for-bit* equivalent to the scalar protocol they
accelerate: identical rounds, outputs, ``messages_sent``, ``words_sent``,
``max_words_per_edge_round`` and ``max_message_words`` on every instance —
and identical for every shard count (enforced by
``tests/test_engine_equivalence.py`` across all four synchronous tiers; the
fifth, ``async`` tier runs the *scalar* protocol on the event-driven
scheduler — ``tests/test_async_scheduler.py`` — and matches the same
ledger, so kernels and scheduler certify each other through it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.congest.message import PayloadSchema, payload_size_words
from repro.errors import SimulationError
from repro.graphs.sharding import Shard

NodeId = Hashable

#: Valid :class:`StateVector` domains and the CSR length attribute they map to.
STATE_DOMAINS = ("node", "arc")


def vectorized_available() -> bool:
    """Return ``True`` when numpy is importable (vectorized tier usable)."""
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy is baked into the CI image
        return False
    return True


@dataclass(frozen=True)
class StateVector:
    """Declaration of one shared per-node or per-arc kernel state vector.

    Attributes
    ----------
    name:
        The key of the vector in the kernel's ``state`` dict.
    domain:
        ``"node"`` (length ``num_nodes``) or ``"arc"`` (length ``num_arcs``).
        The domain determines the contiguous row range a shard owns.
    dtype:
        numpy dtype string (``"f8"``, ``"i8"``, ``"?"``, ...).
    cols:
        ``None`` for a 1-D vector; an integer makes the vector 2-D with shape
        ``(length, cols)`` (e.g. a per-arc chunk queue).  ``cols=0`` is legal
        and declares an empty matrix.
    """

    name: str
    domain: str
    dtype: str
    cols: Optional[int] = None

    def __post_init__(self) -> None:
        if self.domain not in STATE_DOMAINS:
            raise ValueError(
                f"state vector {self.name!r} has domain {self.domain!r}; "
                f"expected one of {STATE_DOMAINS}"
            )

    def length(self, csr) -> int:
        return csr.num_nodes if self.domain == "node" else csr.num_arcs

    def shape(self, csr) -> Tuple[int, ...]:
        n = self.length(csr)
        return (n,) if self.cols is None else (n, self.cols)

    def row_slice(self, shard: Shard) -> slice:
        """The global rows of this vector owned by ``shard``."""
        return shard.node_slice if self.domain == "node" else shard.arc_slice

    def local_length(self, shard: Shard) -> int:
        """Number of rows a shard-local allocation of this vector holds."""
        return shard.num_nodes if self.domain == "node" else shard.num_arcs

    def local_shape(self, shard: Shard) -> Tuple[int, ...]:
        n = self.local_length(shard)
        return (n,) if self.cols is None else (n, self.cols)

    def local_nbytes(self, shard: Shard) -> int:
        """Bytes of a shard-local allocation (the arena segment size)."""
        import numpy as np

        size = 1
        for dim in self.local_shape(shard):
            size *= int(dim)
        return size * np.dtype(self.dtype).itemsize

    def allocate(self, shard: Shard):
        """Allocate the shard-local rows of this vector (zero-initialized).

        This is the shard-local allocation mode of the state contract: the
        returned array covers only ``shard``'s node/arc row range (row 0 is
        ``shard.node_lo``/``shard.arc_lo``); with the whole-graph shard it
        is the familiar full-length vector.
        """
        import numpy as np

        return np.zeros(self.local_shape(shard), dtype=self.dtype)


class StateSchema:
    """The declared shared state of a :class:`RoundKernel`.

    Lists every ``state`` entry that is a per-node or per-arc vector carrying
    round-to-round information.  The sharded engine allocates exactly these
    vectors in shared memory, seeds each worker's row range from the worker's
    own deterministic ``init``, and reads them back for ``outputs`` — so a
    kernel's ``outputs`` (and its ``halted`` termination vector, if any) must
    depend only on declared vectors and init-time instance attributes.
    Undeclared ``state`` entries (send buffers, scalar counters) stay private
    to each worker.
    """

    __slots__ = ("vectors",)

    def __init__(self, *vectors: StateVector) -> None:
        names = [v.name for v in vectors]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate state vector names in {names}")
        self.vectors: Tuple[StateVector, ...] = tuple(vectors)

    def __iter__(self):
        return iter(self.vectors)

    def __len__(self) -> int:
        return len(self.vectors)

    def names(self) -> Tuple[str, ...]:
        return tuple(v.name for v in self.vectors)

    def allocate(self, shard: Shard) -> Dict[str, Any]:
        """Allocate every declared vector shard-locally (zero-initialized)."""
        return {v.name: v.allocate(shard) for v in self.vectors}

    def local_nbytes(self, shard: Shard) -> int:
        """Total declared-state bytes of one shard's allocation."""
        return sum(v.local_nbytes(shard) for v in self.vectors)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StateSchema({', '.join(f'{v.name}:{v.domain}' for v in self.vectors)})"


def supports_shard_init(kernel) -> bool:
    """Return ``True`` when ``kernel.init`` accepts the ``shard`` argument.

    Kernels written before the shard-local state contract declare
    ``init(self, state, csr)``; the compatibility shim (:func:`invoke_init`)
    keeps them working on the single-process tiers, but they cannot run on
    the sharded tier (their whole-graph allocations would not fit the
    per-shard arena segments).
    """
    import inspect

    try:
        sig = inspect.signature(kernel.init)
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return True
    positional = [
        p
        for p in sig.parameters.values()
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    if any(p.kind is p.VAR_POSITIONAL for p in sig.parameters.values()):
        return True
    return len(positional) >= 3


def invoke_init(kernel, state: Dict[str, Any], csr, shard: Shard):
    """Call ``kernel.init`` with the shard when supported (compat shim).

    Single-process tiers call through here so kernels with the legacy
    whole-graph ``init(state, csr)`` signature keep working unchanged (the
    whole-graph shard makes the two specifications coincide).
    """
    if supports_shard_init(kernel):
        return kernel.init(state, csr, shard)
    return kernel.init(state, csr)


class PackedSends:
    """One round's outgoing traffic as preallocated arc-slot arrays.

    All arrays are **shard-local**: position 0 is the calling shard's
    ``arc_lo`` and the length is ``shard.num_arcs``.  On the single-process
    tiers (whole-graph shard) that is the familiar full arc-slot addressing.

    Attributes
    ----------
    mask:
        Boolean array over the shard's arc slots: ``mask[p - arc_lo]`` means
        the owner of arc ``p`` sends one message to the neighbour at ``p``
        this round.
    values:
        ``field name -> array`` (shard arc range length, schema dtype); only
        masked slots are meaningful.  Kernels hand back the same
        preallocated buffers (:meth:`PayloadSchema.alloc`) every round: the
        engine gathers the delivered slots before the next ``round`` call,
        so in-place reuse is safe and no per-round allocation happens.  The
        sharded engine publishes only the *boundary* subset of these values
        (packed) into shared memory.
    words:
        Optional per-arc-slot word sizes for schemas whose payloads reference
        a finite set of precomputed objects of varying size (e.g. label
        chunks).  ``None`` means every message costs ``schema.size_words``.
    """

    __slots__ = ("mask", "values", "words")

    def __init__(self, mask, values: Mapping[str, Any], words=None) -> None:
        self.mask = mask
        self.values = dict(values)
        self.words = words


class PackedInbox:
    """One round's delivered traffic, grouped by receiver in CSR slot order.

    ``arcs`` are the receiver-side arc slots that hold mail, ascending —
    because CSR slots of one node are contiguous, ascending order *is*
    receiver-grouped order, so segmented reductions need no sort.  Each value
    array is parallel to ``arcs``, as is the ``inbox_senders`` array the
    engine passes alongside (sender node indices, ``csr.indices[arcs]``).
    Mapping-style access (``inbox["dist"]``) returns the value array of one
    schema field.

    Arc slots are always *global* ids, also in shard-local inboxes — a
    sharded worker receives exactly :meth:`shard_view` of the global round's
    inbox, so kernels never need to translate indices.
    """

    __slots__ = ("arcs", "values")

    def __init__(self, arcs, values: Mapping[str, Any]) -> None:
        self.arcs = arcs
        self.values = dict(values)

    def __getitem__(self, field: str):
        return self.values[field]

    def __len__(self) -> int:
        return int(self.arcs.shape[0])

    def shard_view(self, shard: Shard) -> "PackedInbox":
        """Restrict to the slots owned by ``shard`` (ids stay global).

        Because ``arcs`` is ascending and a shard's slots are contiguous,
        the restriction is one ``searchsorted`` slice.  This is the sharded
        delivery *contract* — a worker's inbox equals this view of the
        global round's inbox (asserted in ``tests/test_sharding.py``); the
        engine itself assembles each worker's inbox directly from the
        shared arena through the plan's ``rev``-gather tables.
        """
        import numpy as np

        lo = int(np.searchsorted(self.arcs, shard.arc_lo, side="left"))
        hi = int(np.searchsorted(self.arcs, shard.arc_hi, side="left"))
        return PackedInbox(self.arcs[lo:hi], {f: v[lo:hi] for f, v in self.values.items()})

    def segment_starts(self, csr) -> Tuple[Any, Any]:
        """Return ``(starts, receivers)`` for per-receiver reductions.

        ``starts`` indexes the first entry of each receiver's run inside the
        parallel arrays (usable with ``np.minimum.reduceat`` etc.);
        ``receivers`` holds the corresponding node indices.
        """
        import numpy as np

        recv = csr.arc_owner[self.arcs]
        if recv.shape[0] == 0:
            return np.empty(0, dtype=np.int64), recv
        starts = np.flatnonzero(np.r_[True, recv[1:] != recv[:-1]])
        return starts, recv[starts]


class RoundKernel:
    """Base class for whole-round vectorized protocol kernels.

    Subclasses define:

    * ``schema`` — the :class:`PayloadSchema` of every message they send;
    * ``event_driven`` — same contract as
      :attr:`~repro.congest.node.NodeAlgorithm.event_driven` (only used for
      trace statistics; the kernel itself is invoked every round);
    * :meth:`init` — allocate the state vectors *shard-locally* (row 0 at
      ``shard.node_lo``/``shard.arc_lo``, lengths ``shard.num_nodes``/
      ``shard.num_arcs``; see :meth:`StateVector.allocate`) and return the
      round-0 sends of the shard's arcs.  Init must be deterministic given
      ``(csr, shard)``, and init-time instance attributes (chunk tables,
      rank maps) must not depend on the shard, so every worker and the
      parent agree on them.  The sharded parent seeds those attributes by
      invoking init with a degenerate *empty* shard (``num_nodes ==
      num_arcs == 0``), so init must tolerate zero-row allocations.  Legacy
      kernels with the whole-graph ``init(state, csr)`` signature still run
      on the single-process tiers through the :func:`invoke_init` shim;
    * :meth:`round` — consume one round's inbox arrays, update state, return
      the next sends.  Inbox arc slots and sender indices stay *global*; a
      kernel translates them to its local state rows by subtracting
      ``shard.node_lo``/``shard.arc_lo`` (the identity on single-process
      tiers) and must only touch rows inside ``shard`` (inbox slots are
      guaranteed to lie inside it);
    * :meth:`outputs` — per-node outputs after termination, keyed by original
      node id (must equal the scalar protocol's outputs exactly, and must
      depend only on schema-declared state plus init-time attributes);
    * :meth:`state_schema` — optionally, the :class:`StateSchema` declaring
      the shared per-node/per-arc vectors.  Kernels that return ``None``
      (the default) still run on the in-process vectorized tier but cannot
      be sharded.

    The engine reads ``state["halted"]`` (boolean per-node vector, optional —
    absent means no node ever halts) for its termination condition; sharded
    kernels must declare it in the schema.
    """

    schema: PayloadSchema
    event_driven = False

    def state_schema(self, csr) -> Optional[StateSchema]:
        """Declare the shared state vectors (``None`` → not shardable)."""
        return None

    def slice_for_shard(self, shard: Shard, csr) -> "RoundKernel":
        """Return the kernel instance to ship to ``shard``'s worker.

        The sharded tier pickles one kernel per worker into the run header.
        The default ships ``self`` whole; kernels whose constructor payload
        scales with the instance (Bellman-Ford's ``local_inputs`` is O(m))
        override this to return a copy holding only the entries ``shard``
        owns, so per-worker header ingest drops from O(payload) to
        O(payload / num_shards).  The slice must be behaviour-preserving:
        ``init(state, csr, shard)`` on the sliced kernel must produce
        exactly the state and sends of the unsliced kernel for that shard
        (the equivalence suite asserts bit-for-bit results, and a
        regression test asserts the per-shard header-byte drop).  The
        parent always keeps the unsliced kernel for :func:`invoke_init` and
        :meth:`outputs`.
        """
        return self

    def init(self, state: Dict[str, Any], csr, shard: Shard) -> Optional[PackedSends]:
        """Fill ``state`` with shard-local vectors; return the round-0 sends."""
        raise NotImplementedError

    def round(self, state: Dict[str, Any], inbox: PackedInbox,
              inbox_senders, csr, shard: Shard) -> Optional[PackedSends]:
        """Execute one synchronous round as array operations over ``shard``."""
        raise NotImplementedError

    def outputs(self, state: Dict[str, Any], csr) -> Dict[NodeId, Any]:
        """Collect per-node outputs (same values as the scalar protocol)."""
        raise NotImplementedError


class FloodingKernel(RoundKernel):
    """Whole-round pipelined chunk flooding — the kernel of
    :class:`~repro.congest.primitives.ChunkFloodNode` / ``flood_chunks``.

    Bit-for-bit equivalent to the scalar transport.  The ``C`` chunks are a
    finite table precomputed at ``init``, so a message is packed as one int64
    *chunk index* per arc slot and ``payload_size_words`` is an O(1) table
    lookup (``chunk_words``).  The scalar protocol's per-neighbour FIFO
    queues become one ``(arc, chunk) -> enqueue sequence number`` matrix:

    * *learning* chunk ``k`` at round ``r`` from sender ``s`` stamps the
      sequence ``r * (C + n + 2) + C + s`` on every out-arc except the one
      back to ``s`` — strictly increasing in ``(r, s)``, which is exactly the
      scalar learn order (inbox scans run in ascending sender index), and the
      root's round-0 chunks get sequences ``0..C-1`` below all of them;
    * *draining* pops the minimum-sequence pending chunk per arc per round —
      the FIFO ``popleft``;
    * a node halts once it has seen a chunk, knows all ``C``, and has no
      pending arc slot — the scalar ``_finish_if_complete`` after a drain.

    Duplicate deliveries of one chunk to one node in the same round resolve
    to the minimum-index sender (the first inbox hit), so the excluded
    back-arc matches the scalar run exactly.

    Every operation is row-local in the (node, arc) ranges of a shard —
    state is declared via :meth:`state_schema`, so the kernel runs unchanged
    on the sharded tier.  Subclasses override :meth:`_chunk_table` (the wire
    chunks, each starting with ``(k, total)``) and :meth:`outputs` — see
    :class:`~repro.labeling.sssp.LabelBroadcastKernel`, mirroring how the
    scalar ``LabelBroadcastNode`` subclasses ``ChunkFloodNode``.
    """

    schema = PayloadSchema(fields=(("chunk", "i8"),))
    event_driven = False

    def __init__(self, root: NodeId, chunks: Sequence[Any] = ()) -> None:
        self.root = root
        self.source_chunks = tuple(chunks)
        self.chunks: List[Any] = []
        self.chunk_words = None
        self._sentinel = None
        self._wire_table: Optional[List[Any]] = None

    # -- subclass hooks -------------------------------------------------- #
    def _chunk_table(self) -> List[Any]:
        """Return the root's wire chunks, each starting with ``(k, total)``."""
        total = len(self.source_chunks)
        return [(k, total, payload) for k, payload in enumerate(self.source_chunks)]

    def _wire_chunks(self) -> List[Any]:
        """The cached wire-chunk table (``state_schema`` and ``init`` share it)."""
        if self._wire_table is None:
            self._wire_table = self._chunk_table()
        return self._wire_table

    def outputs(self, state: Dict[str, Any], csr) -> Dict[NodeId, Any]:
        halted = state["halted"]
        payload = tuple(chunk[2] for chunk in self.chunks)
        return {
            u: (payload if halted[i] else None) for i, u in enumerate(csr.node_ids)
        }

    # -- shared transport mechanics -------------------------------------- #
    def state_schema(self, csr) -> StateSchema:
        c = len(self._wire_chunks())
        return StateSchema(
            StateVector("halted", "node", "?"),
            StateVector("seen", "node", "?"),
            StateVector("known", "node", "?", cols=c),
            StateVector("pending", "arc", "i8", cols=c),
        )

    def init(self, state: Dict[str, Any], csr, shard: Shard) -> Optional[PackedSends]:
        import numpy as np

        table = self._wire_chunks()
        c = len(table)
        chunk_words = np.zeros(max(c, 1), dtype=np.int64)
        self.chunks = []
        for chunk in table:
            self.chunks.append(chunk)
            chunk_words[chunk[0]] = payload_size_words(chunk)
        self.chunk_words = chunk_words
        self._sentinel = np.iinfo(np.int64).max

        # Shard-local state: row 0 is shard.node_lo / shard.arc_lo.  (Not
        # allocated via state_schema(): subclasses may opt out of sharding
        # by returning None there while still running vectorized.)
        state["halted"] = np.zeros(shard.num_nodes, dtype=bool)
        state["seen"] = np.zeros(shard.num_nodes, dtype=bool)
        state["known"] = np.zeros((shard.num_nodes, c), dtype=bool)
        state["pending"] = np.full((shard.num_arcs, c), self._sentinel, dtype=np.int64)
        state["round"] = 0
        # Preallocated round buffers (worker-local, not schema-declared): the
        # chunk-index payload array, the send mask and the per-arc word
        # sizes, all reused every round.
        state["send"] = self.schema.alloc(shard.num_arcs)
        state["send_mask"] = np.zeros(shard.num_arcs, dtype=bool)
        state["send_words"] = np.zeros(shard.num_arcs, dtype=np.int64)

        src = csr.index_of.get(self.root)
        if src is not None and shard.owns_node(src):
            state["seen"][src - shard.node_lo] = True
            if c:
                state["known"][src - shard.node_lo, :] = True
                lo = int(csr.indptr[src]) - shard.arc_lo
                hi = int(csr.indptr[src + 1]) - shard.arc_lo
                state["pending"][lo:hi, :] = np.arange(c, dtype=np.int64)
        sends = self._pop(state, csr, shard)
        self._update_halts(state, csr, shard)
        return sends

    def _pop(self, state, csr, shard: Shard) -> Optional[PackedSends]:
        """Drain one chunk per owned arc: the minimum-sequence pending entry."""
        import numpy as np

        pending = state["pending"]
        if pending.shape[1] == 0 or pending.shape[0] == 0:
            return None
        kmin = pending.argmin(axis=1)
        rows = np.arange(pending.shape[0])
        got = pending[rows, kmin] != self._sentinel
        mask = state["send_mask"]
        mask[:] = got
        if not got.any():
            return None
        pending[rows[got], kmin[got]] = self._sentinel
        buffers = state["send"]
        buffers["chunk"][:] = kmin
        np.take(self.chunk_words, kmin, out=state["send_words"])
        return PackedSends(mask, buffers, words=state["send_words"])

    def _update_halts(self, state, csr, shard: Shard) -> None:
        import numpy as np

        known = state["known"]
        halted = state["halted"]
        complete = state["seen"] & ~halted
        if known.shape[1]:
            arc_pending = (state["pending"] != self._sentinel).any(axis=1)
            node_pending = (
                np.bincount(
                    csr.arc_owner[shard.arc_slice] - shard.node_lo,
                    weights=arc_pending,
                    minlength=shard.num_nodes,
                )
                > 0
            )
            complete &= known.all(axis=1) & ~node_pending
        halted[complete] = True

    def round(self, state: Dict[str, Any], inbox: PackedInbox,
              inbox_senders, csr, shard: Shard) -> Optional[PackedSends]:
        import numpy as np

        state["round"] += 1
        known = state["known"]
        c = known.shape[1]
        if c and len(inbox):
            ks = inbox["chunk"]
            recv = csr.arc_owner[inbox.arcs] - shard.node_lo  # local rows
            cand = ~state["halted"][recv] & ~known[recv, ks]
            if cand.any():
                rc, kc, sc = recv[cand], ks[cand], inbox_senders[cand]
                # First inbox hit per (receiver, chunk): minimum sender index.
                keys = rc * c + kc
                order = np.lexsort((sc, keys))
                keys_sorted = keys[order]
                win = order[np.r_[True, keys_sorted[1:] != keys_sorted[:-1]]]
                rw, kw, sw = rc[win], kc[win], sc[win]
                known[rw, kw] = True
                state["seen"][rw] = True
                # Enqueue on every out-arc of each learner except the one
                # pointing back at the teaching sender.
                rg = rw + shard.node_lo  # global learner indices
                deg = csr.indptr[rg + 1] - csr.indptr[rg]
                arc_pos = ragged_slices(csr.indptr[rg], deg)
                kk = np.repeat(kw, deg)
                ss = np.repeat(sw, deg)
                seqv = np.repeat(
                    state["round"] * (c + csr.num_nodes + 2) + c + sw, deg
                )
                keep = csr.indices[arc_pos] != ss
                state["pending"][arc_pos[keep] - shard.arc_lo, kk[keep]] = seqv[keep]
        sends = self._pop(state, csr, shard)
        self._update_halts(state, csr, shard)
        return sends


class BFSTreeKernel(RoundKernel):
    """Whole-round BFS-tree construction — the kernel of
    :class:`~repro.congest.primitives.BFSTreeNode` / ``build_bfs_tree``.

    Bit-for-bit equivalent to the scalar protocol: the root halts at init
    and floods ``("bfs", 0)``; an undiscovered node adopts the minimum
    ``(depth, sender)`` offer of its inbox — the scalar inbox scan compares
    senders by their *original ids*, so the kernel precomputes a rank table
    of the node ids under ``<`` (ids that are not mutually comparable are
    refused at init, where the scalar tie-break would raise mid-run) — then
    halts and forwards ``depth + 1`` on every arc except the one back to
    its parent.  A BFS wavefront delivers one depth value per round, so the
    rank only breaks ties between equal-depth offers, exactly like the
    scalar scan.

    All state is declared via :meth:`state_schema` and allocated
    shard-locally, so the kernel runs on the ``vectorized`` and ``sharded``
    tiers; like Bellman-Ford it is a dense-round flood (whole frontiers per
    round), the round shape the kernel tiers exist for.
    """

    schema = PayloadSchema(fields=(("depth", "i8"),), tag="bfs")
    event_driven = True

    def __init__(self, root: NodeId) -> None:
        self.root = root
        self._rank = None
        self._unrank = None

    def state_schema(self, csr) -> StateSchema:
        return StateSchema(
            StateVector("depth", "node", "i8"),
            StateVector("parent", "node", "i8"),
            StateVector("halted", "node", "?"),
        )

    def init(self, state: Dict[str, Any], csr, shard: Shard) -> Optional[PackedSends]:
        import numpy as np

        # Sender tie-break ranks (init-time attribute: deterministic and
        # shard-independent, every worker and the parent compute the same).
        try:
            order = sorted(range(csr.num_nodes), key=lambda i: csr.node_ids[i])
        except TypeError as exc:
            # The scalar protocol compares (depth, sender-id) tuples, so ids
            # that are not mutually comparable would make its tie-break
            # raise; refuse up front rather than silently producing parents
            # the scalar tiers could never output.
            raise SimulationError(
                "BFSTreeKernel requires mutually comparable node ids for the "
                f"sender tie-break ({exc}); run engine='fast' instead"
            ) from None
        unrank = np.asarray(order, dtype=np.int64)
        rank = np.empty(csr.num_nodes, dtype=np.int64)
        rank[unrank] = np.arange(csr.num_nodes, dtype=np.int64)
        self._rank = rank
        self._unrank = unrank

        state.update(self.state_schema(csr).allocate(shard))
        state["depth"].fill(-1)
        state["parent"].fill(-1)
        state["send"] = self.schema.alloc(shard.num_arcs)
        state["send_mask"] = np.zeros(shard.num_arcs, dtype=bool)

        src = csr.index_of.get(self.root)
        if src is None or not shard.owns_node(src):
            return None
        state["depth"][src - shard.node_lo] = 0
        state["halted"][src - shard.node_lo] = True
        lo = int(csr.indptr[src]) - shard.arc_lo
        hi = int(csr.indptr[src + 1]) - shard.arc_lo
        if hi == lo:
            return None
        mask = state["send_mask"]
        mask[lo:hi] = True
        state["send"]["depth"][lo:hi] = 0
        return PackedSends(mask, state["send"])

    def round(self, state: Dict[str, Any], inbox: PackedInbox,
              inbox_senders, csr, shard: Shard) -> Optional[PackedSends]:
        import numpy as np

        mask = state["send_mask"]
        mask[:] = False
        if len(inbox) == 0:
            return None
        depth = state["depth"]
        starts, receivers = inbox.segment_starts(csr)
        recv_l = receivers - shard.node_lo
        fresh = depth[recv_l] < 0
        if not fresh.any():
            return None
        # Minimum (depth, sender rank) offer per receiver, as one int64 key.
        n = csr.num_nodes
        key = inbox["depth"] * n + self._rank[inbox_senders]
        win = np.minimum.reduceat(key, starts)[fresh]
        new_depth = win // n + 1
        new_parent = self._unrank[win % n]
        new_l = recv_l[fresh]
        depth[new_l] = new_depth
        state["parent"][new_l] = new_parent
        state["halted"][new_l] = True

        new_nodes = receivers[fresh]
        deg = csr.indptr[new_nodes + 1] - csr.indptr[new_nodes]
        arc_pos = ragged_slices(csr.indptr[new_nodes], deg) - shard.arc_lo
        state["send"]["depth"][arc_pos] = np.repeat(new_depth, deg)
        keep = arc_pos[csr.indices[arc_pos + shard.arc_lo] != np.repeat(new_parent, deg)]
        if keep.shape[0] == 0:
            return None
        mask[keep] = True
        return PackedSends(mask, state["send"])

    def outputs(self, state: Dict[str, Any], csr) -> Dict[NodeId, Any]:
        node_ids = csr.node_ids
        depth = state["depth"]
        parent = state["parent"]
        out: Dict[NodeId, Any] = {}
        for i, u in enumerate(node_ids):
            d = depth[i]
            if d < 0:
                out[u] = None
            elif parent[i] < 0:
                out[u] = (None, int(d))
            else:
                out[u] = (node_ids[int(parent[i])], int(d))
        return out


class LeaderElectionKernel(RoundKernel):
    """Whole-round minimum-identifier leader election — the kernel of
    :class:`~repro.congest.primitives.LeaderElectionNode` / ``elect_leader``.

    Identifiers compare exactly as the scalar protocol compares them: by the
    ``f"{type(x).__name__}:{x!r}"`` key string, which is defined for every
    hashable id (so, unlike :class:`BFSTreeKernel`, no id family has to be
    refused).  Init ranks all ids by that key into a dense ``int64`` table;
    messages then carry one rank word, and the ledger still charges
    :func:`~repro.congest.message.payload_size_words` of the *identifier*
    behind each rank (the scalar sends the raw id object) through a
    per-rank word table passed as the ``words`` override.

    Round structure mirrors the scalar flood bit for bit: every node sends
    its own id on all arcs at init and stays running; each round, a node
    adopts the minimum delivered rank iff it strictly beats its current
    best and re-floods the improvement on *all* its arcs, and every node
    that saw no improvement halts — including nodes with no mail at all,
    which the scalar worklist still invokes because the protocol is not
    event-driven.  A node that improves *after* halting (a smaller id
    arriving over a longer path) updates its output and re-floods but
    never un-halts, exactly like the scalar ``on_round``.
    """

    schema = PayloadSchema(fields=(("rank", "i8"),))
    event_driven = False

    def state_schema(self, csr) -> StateSchema:
        return StateSchema(
            StateVector("best", "node", "i8"),
            StateVector("halted", "node", "?"),
        )

    def init(self, state: Dict[str, Any], csr, shard: Shard) -> Optional[PackedSends]:
        import numpy as np

        from repro.congest.primitives import LeaderElectionNode

        key = LeaderElectionNode._key
        node_ids = csr.node_ids
        # Rank ids by the scalar comparison key.  Keys are distinct per
        # node (ids are unique and ``repr`` is injective on them within one
        # type name), so the rank order is the scalar's total order.
        order = sorted(range(csr.num_nodes), key=lambda i: key(node_ids[i]))
        unrank = np.asarray(order, dtype=np.int64)
        rank = np.empty(csr.num_nodes, dtype=np.int64)
        rank[unrank] = np.arange(csr.num_nodes, dtype=np.int64)
        self._rank = rank
        self._unrank = unrank
        #: ledger words of the identifier behind each rank — what the
        #: scalar protocol is charged for shipping the raw id object.
        self._rank_words = np.asarray(
            [payload_size_words(node_ids[i]) for i in order], dtype=np.int64
        )

        state.update(self.state_schema(csr).allocate(shard))
        state["best"][:] = rank[shard.node_slice]
        state["send"] = self.schema.alloc(shard.num_arcs)
        state["send_mask"] = np.zeros(shard.num_arcs, dtype=bool)
        state["send_words"] = np.zeros(shard.num_arcs, dtype=np.int64)
        if shard.num_arcs == 0:
            return None
        own_rank = rank[csr.arc_owner[shard.arc_slice]]
        mask = state["send_mask"]
        mask[:] = True
        state["send"]["rank"][:] = own_rank
        state["send_words"][:] = self._rank_words[own_rank]
        return PackedSends(mask, state["send"], words=state["send_words"])

    def round(self, state: Dict[str, Any], inbox: PackedInbox,
              inbox_senders, csr, shard: Shard) -> Optional[PackedSends]:
        import numpy as np

        best = state["best"]
        halted = state["halted"]
        mask = state["send_mask"]
        mask[:] = False
        if len(inbox) == 0:
            # A mail-less round: every node runs the scalar's empty inbox,
            # sees no improvement, and halts (halting twice is a no-op).
            halted[:] = True
            return None
        starts, receivers = inbox.segment_starts(csr)
        recv_l = receivers - shard.node_lo
        seg_min = np.minimum.reduceat(inbox["rank"], starts)
        improved = seg_min < best[recv_l]
        upd_l = recv_l[improved]
        best[upd_l] = seg_min[improved]
        # Everyone without an improvement halts this round (mail or not);
        # improvers keep their halted status — a halted improver re-floods
        # below but stays halted, like the scalar.
        keep = np.zeros(shard.num_nodes, dtype=bool)
        keep[upd_l] = True
        halted[~keep] = True
        if upd_l.shape[0] == 0:
            return None
        imp_nodes = receivers[improved]
        new_best = seg_min[improved]
        deg = csr.indptr[imp_nodes + 1] - csr.indptr[imp_nodes]
        arc_pos = ragged_slices(csr.indptr[imp_nodes], deg) - shard.arc_lo
        if arc_pos.shape[0] == 0:
            return None
        rep = np.repeat(new_best, deg)
        state["send"]["rank"][arc_pos] = rep
        state["send_words"][arc_pos] = self._rank_words[rep]
        mask[arc_pos] = True
        return PackedSends(mask, state["send"], words=state["send_words"])

    def outputs(self, state: Dict[str, Any], csr) -> Dict[NodeId, Any]:
        node_ids = csr.node_ids
        best = state["best"]
        unrank = self._unrank
        return {
            u: node_ids[int(unrank[best[i]])] for i, u in enumerate(node_ids)
        }


class ConvergecastKernel(RoundKernel):
    """Whole-round tree aggregation — the kernel of
    :class:`~repro.congest.primitives.ConvergecastNode` /
    ``convergecast_sum`` with the default summing combiner.

    ``convergecast_sum`` attaches it only when the combiner is the module
    default ``a + b`` and every tree value is a plain number (``int``
    within ±2**31, or ``float``), so the vectorized fold is exact: the
    accumulator dtype is ``i8`` when all values are ints and ``f8``
    otherwise, and each round's reports fold into their receivers in
    ascending ``(receiver, sender index)`` order through an unbuffered
    ``np.add.at`` — the same left-to-right association as the scalar inbox
    scan, so even float sums are bit-for-bit.

    Leaves report at init; an internal node counts down its children and,
    in the round the last one reports, halts and ships its accumulator one
    hop up (bare numbers are one ledger word, matching the scalar's raw
    payloads, so the schema tuple's packed size is overridden with a
    ``words`` table of ones).  Nodes outside the tree halt silently at init
    and output ``None``.  A parent entry that is not a graph neighbour is
    refused at init with the engine's non-neighbour error (the scalar
    raises the same error from ``collect`` in whichever round that node
    completes).
    """

    event_driven = True

    def __init__(self, parent: Mapping[NodeId, Optional[NodeId]],
                 values: Mapping[NodeId, Any]) -> None:
        self.parent = dict(parent)
        self.values = dict(values)
        counts: Dict[NodeId, int] = {u: 0 for u in self.parent}
        for u, p in self.parent.items():
            if p is not None and p in counts:
                counts[p] += 1
        self._children_count = counts
        self._dtype = (
            "f8"
            if any(isinstance(self.values.get(u, 0), float) for u in self.parent)
            else "i8"
        )
        self.schema = PayloadSchema(fields=(("value", self._dtype),))

    def state_schema(self, csr) -> StateSchema:
        return StateSchema(
            StateVector("acc", "node", self._dtype),
            StateVector("pending", "node", "i8"),
            StateVector("in_tree", "node", "?"),
            StateVector("halted", "node", "?"),
        )

    def init(self, state: Dict[str, Any], csr, shard: Shard) -> Optional[PackedSends]:
        import numpy as np

        state.update(self.state_schema(csr).allocate(shard))
        acc = state["acc"]
        pending = state["pending"]
        in_tree = state["in_tree"]
        halted = state["halted"]
        halted[:] = True  # non-tree nodes are silent halted stubs
        parent_arc = np.full(shard.num_nodes, -1, dtype=np.int64)
        index_of = csr.index_of
        indptr = csr.indptr
        indices = csr.indices
        for u, pv in self.parent.items():
            i = index_of.get(u)
            if i is None or not shard.owns_node(i):
                continue
            il = i - shard.node_lo
            in_tree[il] = True
            halted[il] = False
            acc[il] = self.values.get(u, 0)
            pending[il] = self._children_count[u]
            if pv is None:
                continue
            pj = index_of.get(pv)
            arc = -1
            if pj is not None:
                for pos in range(int(indptr[i]), int(indptr[i + 1])):
                    if indices[pos] == pj:
                        arc = pos
                        break
            if arc < 0:
                raise SimulationError(
                    f"node {u!r} attempted to message non-neighbour {pv!r}"
                )
            parent_arc[il] = arc
        state["parent_arc"] = parent_arc  # worker-private, global arc ids
        state["send"] = self.schema.alloc(shard.num_arcs)
        state["send_mask"] = np.zeros(shard.num_arcs, dtype=bool)
        # Scalar payloads are bare numbers: one ledger word per report.
        state["send_words"] = np.ones(shard.num_arcs, dtype=np.int64)
        return self._complete(state, shard, np.flatnonzero(in_tree))

    def _complete(self, state: Dict[str, Any], shard: Shard, candidates):
        """Halt candidates with no outstanding children; report upward."""
        if candidates.shape[0] == 0:
            return None
        pending = state["pending"]
        halted = state["halted"]
        done = candidates[(pending[candidates] == 0) & ~halted[candidates]]
        if done.shape[0] == 0:
            return None
        halted[done] = True
        pa = state["parent_arc"][done]
        has_parent = pa >= 0
        senders_l = done[has_parent]
        if senders_l.shape[0] == 0:  # the root completed
            return None
        arcs_l = pa[has_parent] - shard.arc_lo
        state["send"]["value"][arcs_l] = state["acc"][senders_l]
        mask = state["send_mask"]
        mask[arcs_l] = True
        return PackedSends(mask, state["send"], words=state["send_words"])

    def round(self, state: Dict[str, Any], inbox: PackedInbox,
              inbox_senders, csr, shard: Shard) -> Optional[PackedSends]:
        import numpy as np

        state["send_mask"][:] = False
        if len(inbox) == 0:
            return None
        recv_l = csr.arc_owner[inbox.arcs] - shard.node_lo
        # Fold in ascending (receiver, sender index) order: the scalar fast
        # tier's inbox arrives sorted by sender index, and ``np.add.at``
        # accumulates unbuffered in argument order, so the float sums
        # associate identically.
        order = np.lexsort((inbox_senders, recv_l))
        rl = recv_l[order]
        np.add.at(state["acc"], rl, inbox["value"][order])
        np.subtract.at(state["pending"], rl, 1)
        return self._complete(state, shard, np.unique(rl))

    def outputs(self, state: Dict[str, Any], csr) -> Dict[NodeId, Any]:
        acc = state["acc"]
        halted = state["halted"]
        in_tree = state["in_tree"]
        conv = float if self._dtype == "f8" else int
        return {
            u: conv(acc[i]) if (in_tree[i] and halted[i]) else None
            for i, u in enumerate(csr.node_ids)
        }


def ragged_slices(starts, counts):
    """Concatenate ``range(starts[i], starts[i] + counts[i])`` as one array.

    The standard trick for expanding CSR slices of many nodes at once (used
    by kernels to touch all arc slots of a set of nodes without a Python
    loop).
    """
    import numpy as np

    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return np.repeat(starts, counts) + offsets
