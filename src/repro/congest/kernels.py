"""Whole-round protocol kernels for the vectorized CONGEST engine tier.

The scalar engines (``legacy``, ``fast``) call one Python method per node per
round.  The vectorized tier replaces that inner loop entirely: a protocol is
expressed as a :class:`RoundKernel` whose state is a dict of per-node numpy
vectors and whose ``round`` function transforms a whole round's delivered
traffic — packed arrays keyed by dense CSR arc slot — with segmented
reductions (min/sum over each node's inbox slice).  No Python loop runs over
nodes or messages inside a round.

Data flow of one round (driven by :func:`repro.congest.engine.run_vectorized`):

1. the previous round's :class:`PackedSends` (an arc-slot send mask plus one
   value array per :class:`~repro.congest.message.PayloadSchema` field) is
   *delivered* by gathering through ``csr.rev`` — the message sent on arc
   ``p`` (``i -> j``) lands in receiver-side slot ``rev[p]``;
2. the kernel's ``round(state, inbox_values, inbox_senders, csr)`` is called
   with the delivered slots grouped by receiver (ascending arc slot order,
   i.e. CSR segment order) and returns the next :class:`PackedSends`;
3. the engine accounts messages/words/per-edge bandwidth from the send mask
   with ``bincount`` over ``csr.arc_edge_ids`` — O(#messages) array work,
   with ``payload_size_words`` O(1) per message via the schema.

The ``state`` dict / inbox-array boundary is deliberately the future shard
interface (see ROADMAP: multiprocess sharding): a shard owns a contiguous
node range of every state vector plus its arc slots, and a round exchanges
only ``rev``-gathered boundary slots between shards.

Kernels must be *bit-for-bit* equivalent to the scalar protocol they
accelerate: identical rounds, outputs, ``messages_sent``, ``words_sent``,
``max_words_per_edge_round`` and ``max_message_words`` on every instance
(enforced by ``tests/test_engine_equivalence.py`` across all three tiers).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Mapping, Optional, Tuple

from repro.congest.message import PayloadSchema

NodeId = Hashable


def vectorized_available() -> bool:
    """Return ``True`` when numpy is importable (vectorized tier usable)."""
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy is baked into the CI image
        return False
    return True


class PackedSends:
    """One round's outgoing traffic as preallocated arc-slot arrays.

    Attributes
    ----------
    mask:
        Boolean array over arc slots: ``mask[p]`` means the owner of arc ``p``
        sends one message to the neighbour at ``p`` this round.
    values:
        ``field name -> array`` (full arc-slot length, schema dtype); only
        masked slots are meaningful.  Kernels hand back the same
        preallocated buffers (:meth:`PayloadSchema.alloc`) every round: the
        engine gathers the delivered slots before the next ``round`` call,
        so in-place reuse is safe and no per-round allocation happens.
    words:
        Optional per-arc-slot word sizes for schemas whose payloads reference
        a finite set of precomputed objects of varying size (e.g. label
        chunks).  ``None`` means every message costs ``schema.size_words``.
    """

    __slots__ = ("mask", "values", "words")

    def __init__(self, mask, values: Mapping[str, Any], words=None) -> None:
        self.mask = mask
        self.values = dict(values)
        self.words = words


class PackedInbox:
    """One round's delivered traffic, grouped by receiver in CSR slot order.

    ``arcs`` are the receiver-side arc slots that hold mail, ascending —
    because CSR slots of one node are contiguous, ascending order *is*
    receiver-grouped order, so segmented reductions need no sort.  Each value
    array is parallel to ``arcs``, as is the ``inbox_senders`` array the
    engine passes alongside (sender node indices, ``csr.indices[arcs]``).
    Mapping-style access (``inbox["dist"]``) returns the value array of one
    schema field.
    """

    __slots__ = ("arcs", "values")

    def __init__(self, arcs, values: Mapping[str, Any]) -> None:
        self.arcs = arcs
        self.values = dict(values)

    def __getitem__(self, field: str):
        return self.values[field]

    def __len__(self) -> int:
        return int(self.arcs.shape[0])

    def segment_starts(self, csr) -> Tuple[Any, Any]:
        """Return ``(starts, receivers)`` for per-receiver reductions.

        ``starts`` indexes the first entry of each receiver's run inside the
        parallel arrays (usable with ``np.minimum.reduceat`` etc.);
        ``receivers`` holds the corresponding node indices.
        """
        import numpy as np

        recv = csr.arc_owner[self.arcs]
        if recv.shape[0] == 0:
            return np.empty(0, dtype=np.int64), recv
        starts = np.flatnonzero(np.r_[True, recv[1:] != recv[:-1]])
        return starts, recv[starts]


class RoundKernel:
    """Base class for whole-round vectorized protocol kernels.

    Subclasses define:

    * ``schema`` — the :class:`PayloadSchema` of every message they send;
    * ``event_driven`` — same contract as
      :attr:`~repro.congest.node.NodeAlgorithm.event_driven` (only used for
      trace statistics; the kernel itself is invoked every round);
    * :meth:`init` — allocate the state vectors and return the round-0 sends;
    * :meth:`round` — consume one round's inbox arrays, update state, return
      the next sends;
    * :meth:`outputs` — per-node outputs after termination, keyed by original
      node id (must equal the scalar protocol's outputs exactly).

    The engine reads ``state["halted"]`` (boolean per-node vector, optional —
    absent means no node ever halts) for its termination condition.
    """

    schema: PayloadSchema
    event_driven = False

    def init(self, state: Dict[str, Any], csr) -> Optional[PackedSends]:
        """Fill ``state`` with per-node vectors; return the round-0 sends."""
        raise NotImplementedError

    def round(self, state: Dict[str, Any], inbox_values: PackedInbox,
              inbox_senders, csr) -> Optional[PackedSends]:
        """Execute one synchronous round as array operations."""
        raise NotImplementedError

    def outputs(self, state: Dict[str, Any], csr) -> Dict[NodeId, Any]:
        """Collect per-node outputs (same values as the scalar protocol)."""
        raise NotImplementedError


def ragged_slices(starts, counts):
    """Concatenate ``range(starts[i], starts[i] + counts[i])`` as one array.

    The standard trick for expanding CSR slices of many nodes at once (used
    by kernels to touch all arc slots of a set of nodes without a Python
    loop).
    """
    import numpy as np

    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return np.repeat(starts, counts) + offsets
