"""The synchronous CONGEST network simulator.

:class:`CongestNetwork` wraps an undirected communication graph and executes a
:class:`~repro.congest.node.NodeAlgorithm` instance per node in lock-step
synchronous rounds, enforcing the per-edge bandwidth budget of the model and
counting rounds.  The goal is a faithful round/bandwidth accounting; the
sharded tier additionally buys wall-clock parallel speed-up for large dense
rounds.

Five interchangeable execution tiers are provided (see
:mod:`repro.congest.engine` for the full architecture notes):

* ``engine="fast"`` (default) — the indexed CSR scalar path: flat integer
  node space, preallocated double-buffered inboxes, an active-node worklist,
  and dense per-edge bandwidth counters.  Every protocol runs on this tier.
* ``engine="vectorized"`` — the whole-round array tier for protocols that
  also provide a :class:`~repro.congest.kernels.RoundKernel` (packed numpy
  payloads, segmented CSR reductions, no per-node Python calls).
* ``engine="sharded"`` — the multiprocess tier for kernels that declare
  their state via a :class:`~repro.congest.kernels.StateSchema`: the node
  space is partitioned by a :class:`~repro.graphs.sharding.ShardPlan`, each
  shard's state rows live in that shard's segment of a
  ``multiprocessing.shared_memory`` arena, and one worker per shard runs
  lockstep rounds exchanging only *packed* boundary payload slots
  (``num_shards`` controls the worker count; a persistent
  :class:`~repro.congest.engine.ShardPool` — attached to the network or
  passed per run — reuses the workers across runs).
* ``engine="async"`` — the event-driven asynchronous tier
  (:mod:`repro.congest.scheduler`): per-(arc, message) delivery times from a
  pluggable seeded :class:`~repro.congest.scheduler.DelayModel`, nodes driven
  from a binary-heap event queue through an α-synchronizer adapter so every
  round-based protocol runs unmodified.  Bit-for-bit equal to the
  synchronous tiers under the unit-delay model; output-identical (and
  ledger-identical) under every seeded model, with ``virtual_time`` and
  per-arc in-flight high-water marks reporting the asynchronous timing.
* ``engine="legacy"`` — the original dict-based reference loop, kept so the
  randomized equivalence suite can certify that every optimised tier
  produces identical rounds, outputs, and word counts on every instance.

Requests for a tier the protocol/environment cannot satisfy (no kernel, no
numpy, no state schema, a non-picklable delay model, a synchronous-only
protocol) gracefully fall back down the ladder and emit a single
:class:`~repro.congest.engine.EngineFallbackWarning` naming the requested
tier, the selected tier and the reason; the returned result's ``engine``
field reports the tier that actually ran.

All tiers account bandwidth *per edge per round*: the reported
``max_words_per_edge_round`` is the busiest (edge, round) pair with the words
of both directions summed, not merely the largest single message (which is
still available as ``max_message_words``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Mapping, Optional, Tuple

from repro.congest.engine import (
    EngineFallbackWarning,
    RoundStats,
    ShardPool,
    SimulationTrace,
    fallback_message,
    run_fast,
    run_sharded,
    run_vectorized,
    sharded_available,
)
from repro.congest.faults import FaultVerdict
from repro.congest.kernels import RoundKernel, supports_shard_init, vectorized_available
from repro.congest.message import DEFAULT_WORDS_PER_MESSAGE, Message
from repro.congest.node import NodeAlgorithm, NodeContext
from repro.errors import BandwidthExceededError, ConvergenceError, GraphError, SimulationError
from repro.graphs.graph import Graph

NodeId = Hashable

#: Engines accepted by :meth:`CongestNetwork.run`.
ENGINES = ("fast", "legacy", "vectorized", "sharded", "async")


@dataclass
class SimulationResult:
    """Outcome of one simulated protocol execution.

    Attributes
    ----------
    rounds:
        Number of synchronous communication rounds executed (rounds in which
        at least one message was in flight or at least one node was still
        active).
    outputs:
        Mapping ``node -> algorithm.output`` collected after termination.
    messages_sent:
        Total number of messages delivered over the whole execution.
    words_sent:
        Total payload volume in O(log n)-bit words.
    max_words_per_edge_round:
        The busiest (edge, round) pair: the largest total number of words
        (both directions summed) that crossed a single edge in a single
        round.
    halted:
        ``True`` if every node halted before the round limit.
    max_message_words:
        The largest single-message size observed (the per-direction budget
        check applies to this quantity).
    engine:
        Which execution tier produced the result (``"fast"``/``"legacy"``/
        ``"vectorized"``/``"sharded"``/``"async"``).  A request that fell
        back reports the tier that actually ran.
    trace:
        The :class:`~repro.congest.engine.SimulationTrace` passed to ``run``,
        if any, holding round-by-round statistics.
    shard_stats:
        For sharded runs only: the memory/exchange accounting of the run —
        the ``transport`` that carried it (``"shm"``/``"socket"``),
        per-shard declared-state and exchange-segment bytes, total arena
        bytes (0 on the socket transport), boundary messages/words
        published, the split run-header sizes (``run_header_bytes`` with the
        pickled-once ``common`` blob and the ``per_shard`` kernel-slice
        suffixes), worker PIDs, and — on the socket transport — the bytes
        that actually crossed the wire (``wire_bytes_by_peer`` keyed
        ``"s->t"``, ``wire_control_bytes``, ``wire_bytes_total``).  ``None``
        on the single-process tiers.  Excluded from tier equivalence — it
        describes the execution substrate, not the protocol.
    virtual_time:
        For async runs only: the event-queue time at which the last node
        pulse executed.  Equals ``rounds`` under the unit-delay model;
        ``None`` on the synchronous tiers (where rounds *are* the clock).
    async_stats:
        For async runs only: the timing accounting of the schedule (the
        delay model, events processed, ``virtual_time``, the maximum per-arc
        in-flight high-water mark and the ``congested_arcs`` that reached a
        high-water ≥ 2 — i.e. where messages pipelined across a slow link).
        ``None`` on the synchronous tiers.  Like ``shard_stats``, excluded
        from tier equivalence: it describes the schedule, not the protocol.
    fault_verdict:
        For async runs given a ``fault_schedule``: the
        :class:`~repro.congest.faults.FaultVerdict` accounting of the run —
        faults injected, whether the system reconverged (everything
        recovered at stop time), the last fault round and the rounds the
        protocol needed after it, payloads lost to crashed links/nodes, and
        any elements left permanently down.  ``None`` on runs without a
        fault schedule.
    """

    rounds: int
    outputs: Dict[NodeId, Any]
    messages_sent: int
    words_sent: int
    max_words_per_edge_round: int
    halted: bool
    max_message_words: int = 0
    engine: str = "fast"
    trace: Optional[SimulationTrace] = None
    shard_stats: Optional[Dict[str, Any]] = None
    virtual_time: Optional[int] = None
    async_stats: Optional[Dict[str, Any]] = None
    fault_verdict: Optional[FaultVerdict] = None


class CongestNetwork:
    """A synchronous message-passing network over an undirected graph.

    Parameters
    ----------
    graph:
        The communication network (must be a simple undirected graph; for
        directed/weighted input instances pass ``instance.underlying_graph()``
        and supply the instance's incident edges via ``local_inputs``).
    words_per_message:
        Bandwidth budget per message in O(log n)-bit words.  Because a node
        sends at most one message per neighbour per round, this is equivalent
        to the CONGEST per-direction-per-round budget.
    strict_bandwidth:
        If ``True`` (default) oversized messages raise
        :class:`BandwidthExceededError`; if ``False`` they are still delivered
        but show up in the bandwidth statistics (useful for prototyping new
        protocols).
    engine:
        Default execution engine for :meth:`run` (``"fast"``, ``"legacy"``,
        ``"vectorized"``, ``"sharded"`` or ``"async"``).
    shard_pool:
        Optional :class:`~repro.congest.engine.ShardPool` the network's
        sharded runs reuse (worker processes park between runs instead of
        being re-spawned per call).  The network adopts the pool's
        lifecycle: ``close()`` — or using the network as a context manager —
        shuts it down.  Without a pool, every sharded run spins up and tears
        down its own workers.
    """

    def __init__(
        self,
        graph: Graph,
        words_per_message: int = DEFAULT_WORDS_PER_MESSAGE,
        strict_bandwidth: bool = True,
        engine: str = "fast",
        shard_pool: Optional[ShardPool] = None,
    ) -> None:
        if graph.num_nodes() == 0:
            raise GraphError("cannot simulate an empty network")
        if engine not in ENGINES:
            raise SimulationError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.graph = graph
        self.words_per_message = words_per_message
        self.strict_bandwidth = strict_bandwidth
        self.engine = engine
        self.shard_pool = shard_pool
        #: CSR snapshot of the communication graph (contiguous int node ids);
        #: refreshed automatically at ``run()`` if the graph was mutated.
        self.indexed = None
        self._neighbors: Dict[NodeId, List[NodeId]] = {}
        self._out_maps: List[Dict[NodeId, Tuple[int, int]]] = []
        self._refresh_view()

    def _refresh_view(self) -> None:
        """(Re)build the CSR view and lookup tables if the graph changed.

        ``Graph.to_indexed`` is version-cached, so this is O(1) when the
        graph is unmodified.
        """
        idx = self.graph.to_indexed()
        if idx is self.indexed:
            return
        self.indexed = idx
        self._neighbors = {
            u: idx.neighbor_ids[i] for i, u in enumerate(idx.node_ids)
        }
        # O(1) outbox-validation/edge-lookup tables; cached on the snapshot
        # so every network over the same graph shares them (also reused by
        # the legacy loop for edge accounting).
        self._out_maps = idx.neighbor_maps

    # ------------------------------------------------------------------ #
    # ShardPool lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut down the attached :class:`ShardPool`, if any.

        The network stays fully usable afterwards — subsequent sharded runs
        simply fall back to per-run ephemeral worker pools.
        """
        if self.shard_pool is not None:
            self.shard_pool.close()
            self.shard_pool = None

    def __enter__(self) -> "CongestNetwork":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------ #
    def run(
        self,
        algorithm_factory: Callable[[NodeId], NodeAlgorithm],
        max_rounds: int = 10_000,
        local_inputs: Optional[Mapping[NodeId, Any]] = None,
        stop_when_quiet: bool = True,
        engine: Optional[str] = None,
        trace: Optional[SimulationTrace] = None,
        kernel: Optional[RoundKernel] = None,
        num_shards: Optional[int] = None,
        barrier_timeout: Optional[float] = None,
        shard_pool: Optional[ShardPool] = None,
        delay_model=None,
        transport=None,
        fault_schedule=None,
        scheduler: Optional[str] = None,
        accel: Optional[str] = None,
    ) -> SimulationResult:
        """Execute one protocol on every node and return the round statistics.

        Parameters
        ----------
        algorithm_factory:
            Called once per node id to create that node's protocol instance.
        max_rounds:
            Hard limit on the number of rounds; exceeding it raises
            :class:`ConvergenceError` unless ``stop_when_quiet`` ended the run
            earlier.
        local_inputs:
            Optional per-node application input, exposed to the protocol as
            ``ctx.local_edges``.
        stop_when_quiet:
            If ``True`` the simulation also stops when no messages are in
            flight and no node produced new messages this round, even if some
            nodes have not explicitly halted (global quiescence).  This models
            the standard convention that the round complexity of an algorithm
            is the index of the last round in which a message is sent.
        engine:
            Execution engine override (``"fast"``/``"legacy"``/
            ``"vectorized"``/``"sharded"``/``"async"``); defaults to the
            network's engine.  All tiers produce identical results (the
            async tier bit-for-bit under unit delays, output-identical
            under every seeded delay model).
        trace:
            Optional :class:`~repro.congest.engine.SimulationTrace` collecting
            round-by-round statistics.
        kernel:
            Whole-round :class:`~repro.congest.kernels.RoundKernel` for the
            ``vectorized``/``sharded`` tiers.  When omitted, a
            ``round_kernel`` attribute on ``algorithm_factory`` is used if
            present; with no kernel (or no numpy, or — for ``sharded`` — no
            :class:`~repro.congest.kernels.StateSchema`) the run gracefully
            falls back down the tier ladder with a single
            :class:`~repro.congest.engine.EngineFallbackWarning` — check
            ``SimulationResult.engine`` for the tier that actually ran.
        num_shards:
            Worker-process count for the ``sharded`` tier (default: the
            attached/passed pool's size, else one per CPU, capped; see
            :func:`~repro.congest.engine.default_num_shards`).  Requests
            exceeding the node count are clamped with a single
            :class:`~repro.congest.engine.EngineFallbackWarning`.  Results
            are identical for every shard count.
        barrier_timeout:
            Per-phase synchronization timeout of the ``sharded`` tier in
            seconds (default
            :data:`~repro.congest.engine.DEFAULT_BARRIER_TIMEOUT`).  Bounds
            one round phase, not the whole run; raise it for instances whose
            individual rounds legitimately exceed it.
        shard_pool:
            :class:`~repro.congest.engine.ShardPool` to run the ``sharded``
            tier on (overrides the network's attached pool for this call).
            The pool's workers are reused across runs; ownership stays with
            the caller.
        delay_model:
            :class:`~repro.congest.scheduler.DelayModel` assigning every
            (arc, message) envelope its delivery time on the ``async`` tier
            (default :class:`~repro.congest.scheduler.UnitDelay`).  Only
            meaningful with ``engine="async"``; a non-picklable model (whose
            schedule could not be snapshotted for reproduction) falls back
            to ``fast`` with a single
            :class:`~repro.congest.engine.EngineFallbackWarning`.
        transport:
            Boundary-exchange transport of the ``sharded`` tier:
            ``None``/``"shm"`` (the default shared-memory arena),
            ``"socket"`` (localhost TCP — workers hold no shared memory and
            ``shard_stats`` reports per-peer bytes on the wire), or a
            :class:`~repro.congest.transport.Transport` instance.  Only
            meaningful with ``engine="sharded"``; results are bit-for-bit
            identical under either transport.  If the sharded tier itself
            falls back down the ladder the transport choice is moot (the
            fallback warning already names the tier that ran); a socket
            listener that cannot bind degrades to the shared-memory
            transport with a single
            :class:`~repro.congest.engine.EngineFallbackWarning`.
        fault_schedule:
            :class:`~repro.congest.faults.FaultSchedule` (explicit timed
            node/edge crash+recover transitions) or seeded
            :class:`~repro.congest.faults.FaultModel` generator
            (:class:`~repro.congest.faults.MassFailure` /
            :class:`~repro.congest.faults.Churn` /
            :class:`~repro.congest.faults.LinkFlap`) to inject into the run.
            Only the ``async`` tier supports fault injection: the lockstep
            synchronous tiers have no notion of mid-round crash timing, so
            any other engine raises :class:`~repro.errors.SimulationError`
            (no silent fallback — dropping the faults would silently change
            the experiment).  The run's accounting is returned as
            ``SimulationResult.fault_verdict``.
        scheduler:
            Event-queue implementation of the ``async`` tier:
            ``"bucketed"`` (the calendar-queue fast path, default) or
            ``"heap"`` (the reference binary heap).  Both produce identical
            runs — see :mod:`repro.congest.scheduler`.  Only meaningful with
            ``engine="async"``.
        accel:
            Compiled-kernel backend for the numpy tiers' inner loops
            (:mod:`repro._accel`): ``"auto"`` (numba when importable, the
            default), ``"numba"`` (required — falls back to ``"python"``
            with a single
            :class:`~repro.congest.engine.EngineFallbackWarning` when numba
            is not installed) or ``"python"`` (the plain numpy reference
            path).  Either backend is bit-for-bit identical.
        """
        self._refresh_view()
        chosen = engine if engine is not None else self.engine
        if accel is not None:
            from repro import _accel

            _accel.select_backend(accel)
        if scheduler is not None and chosen != "async":
            raise SimulationError(
                f"scheduler is only meaningful with engine='async' "
                f"(requested engine {chosen!r})"
            )
        if kernel is None:
            kernel = getattr(algorithm_factory, "round_kernel", None)
        if delay_model is not None and chosen != "async":
            raise SimulationError(
                f"delay_model is only meaningful with engine='async' "
                f"(requested engine {chosen!r})"
            )
        if fault_schedule is not None and chosen != "async":
            raise SimulationError(
                f"fault_schedule requires engine='async' (requested engine "
                f"{chosen!r}): the lockstep synchronous tiers cannot honour "
                "mid-round crash/recovery timing"
            )
        if transport is not None and chosen != "sharded":
            raise SimulationError(
                f"transport is only meaningful with engine='sharded' "
                f"(requested engine {chosen!r})"
            )
        if chosen == "async":
            from repro.congest.scheduler import async_incompatibility, run_async

            reason, probe = async_incompatibility(self, algorithm_factory, delay_model)
            if reason is None:
                return run_async(
                    self,
                    algorithm_factory,
                    delay_model=delay_model,
                    max_rounds=max_rounds,
                    local_inputs=local_inputs,
                    stop_when_quiet=stop_when_quiet,
                    trace=trace,
                    fault_schedule=fault_schedule,
                    scheduler=scheduler if scheduler is not None else "bucketed",
                    _probe=probe,
                )
            if fault_schedule is not None:
                # No silent fallback here: the fast tier cannot inject the
                # faults, so degrading would silently run a different
                # (fault-free) experiment.
                raise SimulationError(
                    f"fault_schedule requires the async tier, which cannot "
                    f"serve this request ({reason})"
                )
            warnings.warn(
                fallback_message("async", "fast", reason),
                EngineFallbackWarning,
                stacklevel=2,
            )
            chosen = "fast"
        if chosen == "sharded":
            if (
                kernel is not None
                and sharded_available()
                and kernel.state_schema(self.indexed.to_arrays()) is not None
                and supports_shard_init(kernel)
            ):
                return run_sharded(
                    self,
                    kernel,
                    num_shards=num_shards,
                    max_rounds=max_rounds,
                    stop_when_quiet=stop_when_quiet,
                    trace=trace,
                    barrier_timeout=barrier_timeout,
                    pool=shard_pool if shard_pool is not None else self.shard_pool,
                    transport=transport,
                )
            if kernel is None:
                reason, chosen = "the protocol provides no RoundKernel", "fast"
            elif not sharded_available():
                reason = "numpy/shared-memory support is unavailable"
                chosen = "vectorized" if vectorized_available() else "fast"
            elif kernel.state_schema(self.indexed.to_arrays()) is None:
                reason = f"kernel {type(kernel).__name__} declares no StateSchema"
                chosen = "vectorized"
            else:
                reason = (
                    f"kernel {type(kernel).__name__}.init is not shard-aware "
                    "(expected init(state, csr, shard))"
                )
                chosen = "vectorized"
            warnings.warn(
                fallback_message("sharded", chosen, reason),
                EngineFallbackWarning,
                stacklevel=2,
            )
        if chosen == "vectorized":
            if kernel is not None and vectorized_available():
                return run_vectorized(
                    self,
                    kernel,
                    max_rounds=max_rounds,
                    stop_when_quiet=stop_when_quiet,
                    trace=trace,
                )
            # Capability check failed (no kernel for this protocol, or numpy
            # missing): run the same protocol on the scalar fast tier.
            reason = (
                "the protocol provides no RoundKernel"
                if kernel is None
                else "numpy is unavailable"
            )
            warnings.warn(
                fallback_message("vectorized", "fast", reason),
                EngineFallbackWarning,
                stacklevel=2,
            )
            chosen = "fast"
        if chosen == "fast":
            return run_fast(
                self,
                algorithm_factory,
                max_rounds=max_rounds,
                local_inputs=local_inputs,
                stop_when_quiet=stop_when_quiet,
                trace=trace,
            )
        if chosen == "legacy":
            return self._run_legacy(
                algorithm_factory,
                max_rounds=max_rounds,
                local_inputs=local_inputs,
                stop_when_quiet=stop_when_quiet,
                trace=trace,
            )
        raise SimulationError(f"unknown engine {chosen!r}; expected one of {ENGINES}")

    # ------------------------------------------------------------------ #
    def _run_legacy(
        self,
        algorithm_factory: Callable[[NodeId], NodeAlgorithm],
        max_rounds: int = 10_000,
        local_inputs: Optional[Mapping[NodeId, Any]] = None,
        stop_when_quiet: bool = True,
        trace: Optional[SimulationTrace] = None,
    ) -> SimulationResult:
        """The original dict-based reference loop (one inbox rebuild per round).

        Kept verbatim (plus per-edge-per-round accounting and tracing) as the
        ground truth the fast engine is equivalence-tested against.
        """
        nodes = self.graph.nodes()
        n = len(nodes)
        index_of = self.indexed.index_of
        algos: Dict[NodeId, NodeAlgorithm] = {}
        ctxs: Dict[NodeId, NodeContext] = {}
        for u in nodes:
            algo = algorithm_factory(u)
            if not isinstance(algo, NodeAlgorithm):
                raise SimulationError(
                    f"algorithm_factory must return NodeAlgorithm instances, got {type(algo)!r}"
                )
            algos[u] = algo
            ctxs[u] = NodeContext(
                node=u,
                neighbors=self._neighbors[u],
                n=n,
                round_number=0,
                local_edges=None if local_inputs is None else local_inputs.get(u),
            )

        messages_sent = 0
        words_sent = 0
        max_message_words = 0
        max_edge_round_words = 0
        batch_edge_words: Dict[int, int] = {}  # edge id -> words in the pending batch

        def validate_and_collect(sender: NodeId, outbox: Mapping[NodeId, Any]) -> List[Message]:
            nonlocal messages_sent, words_sent, max_message_words
            out: List[Message] = []
            if not outbox:
                return out
            omap = self._out_maps[index_of[sender]]
            for receiver, payload in outbox.items():
                target = omap.get(receiver)
                if target is None:
                    raise SimulationError(
                        f"node {sender!r} attempted to message non-neighbour {receiver!r}"
                    )
                msg = Message(sender, receiver, payload)
                size = msg.size_words()
                if size > self.words_per_message and self.strict_bandwidth:
                    raise BandwidthExceededError(
                        f"message from {sender!r} to {receiver!r} is {size} words "
                        f"(budget {self.words_per_message})"
                    )
                messages_sent += 1
                words_sent += size
                max_message_words = max(max_message_words, size)
                eid = target[1]
                batch_edge_words[eid] = batch_edge_words.get(eid, 0) + size
                out.append(msg)
            return out

        # Round 0 message generation (initialization).
        in_flight: List[Message] = []
        for u in nodes:
            in_flight.extend(validate_and_collect(u, algos[u].initialize(ctxs[u])))

        rounds = 0
        while rounds < max_rounds:
            all_halted = all(a.halted for a in algos.values())
            if all_halted and not in_flight:
                break
            if stop_when_quiet and not in_flight and rounds > 0:
                break
            rounds += 1
            # Seal the pending batch: it crosses the edges in this round.
            batch_edge_max = max(batch_edge_words.values(), default=0)
            max_edge_round_words = max(max_edge_round_words, batch_edge_max)
            batch_edge_words = {}
            if trace is not None:
                batch_msgs = len(in_flight)
                batch_words = sum(m.size_words() for m in in_flight)
            # Deliver messages.
            inboxes: Dict[NodeId, List[Message]] = {u: [] for u in nodes}
            for msg in in_flight:
                inboxes[msg.receiver].append(msg)
            in_flight = []
            active_count = 0
            for u in nodes:
                algo = algos[u]
                if not inboxes[u] and (algo.halted or algo.event_driven):
                    continue
                active_count += 1
                ctxs[u].round_number = rounds
                outbox = algo.on_round(ctxs[u], inboxes[u])
                in_flight.extend(validate_and_collect(u, outbox))
            if trace is not None:
                trace.record(
                    RoundStats(
                        round_number=rounds,
                        active_nodes=active_count,
                        messages_delivered=batch_msgs,
                        words_delivered=batch_words,
                        max_edge_words=batch_edge_max,
                        halted_nodes=sum(1 for a in algos.values() if a.halted),
                    )
                )
        else:
            raise ConvergenceError(
                f"simulation did not terminate within {max_rounds} rounds"
            )

        outputs = {u: algos[u].output for u in nodes}
        halted = all(a.halted for a in algos.values())
        return SimulationResult(
            rounds=rounds,
            outputs=outputs,
            messages_sent=messages_sent,
            words_sent=words_sent,
            max_words_per_edge_round=max_edge_round_words,
            halted=halted,
            max_message_words=max_message_words,
            engine="legacy",
            trace=trace,
        )
