"""The synchronous CONGEST network simulator.

:class:`CongestNetwork` wraps an undirected communication graph and executes a
:class:`~repro.congest.node.NodeAlgorithm` instance per node in lock-step
synchronous rounds, enforcing the per-edge bandwidth budget of the model and
counting rounds.  The simulator is sequential (single process): the goal is a
faithful round/bandwidth accounting, not wall-clock parallel speed-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Mapping, Optional

from repro.congest.message import DEFAULT_WORDS_PER_MESSAGE, Message
from repro.congest.node import NodeAlgorithm, NodeContext
from repro.errors import BandwidthExceededError, ConvergenceError, GraphError, SimulationError
from repro.graphs.graph import Graph

NodeId = Hashable


@dataclass
class SimulationResult:
    """Outcome of one simulated protocol execution.

    Attributes
    ----------
    rounds:
        Number of synchronous communication rounds executed (rounds in which
        at least one message was in flight or at least one node was still
        active).
    outputs:
        Mapping ``node -> algorithm.output`` collected after termination.
    messages_sent:
        Total number of messages delivered over the whole execution.
    words_sent:
        Total payload volume in O(log n)-bit words.
    max_words_per_edge_round:
        The largest single-message size observed (must be ≤ the budget).
    halted:
        ``True`` if every node halted before the round limit.
    """

    rounds: int
    outputs: Dict[NodeId, Any]
    messages_sent: int
    words_sent: int
    max_words_per_edge_round: int
    halted: bool


class CongestNetwork:
    """A synchronous message-passing network over an undirected graph.

    Parameters
    ----------
    graph:
        The communication network (must be a simple undirected graph; for
        directed/weighted input instances pass ``instance.underlying_graph()``
        and supply the instance's incident edges via ``local_inputs``).
    words_per_message:
        Bandwidth budget per message in O(log n)-bit words.
    strict_bandwidth:
        If ``True`` (default) oversized messages raise
        :class:`BandwidthExceededError`; if ``False`` they are charged as
        multiple rounds' worth of traffic in the statistics but still
        delivered (useful for prototyping new protocols).
    """

    def __init__(
        self,
        graph: Graph,
        words_per_message: int = DEFAULT_WORDS_PER_MESSAGE,
        strict_bandwidth: bool = True,
    ) -> None:
        if graph.num_nodes() == 0:
            raise GraphError("cannot simulate an empty network")
        self.graph = graph
        self.words_per_message = words_per_message
        self.strict_bandwidth = strict_bandwidth
        self._neighbors: Dict[NodeId, List[NodeId]] = {
            u: sorted(graph.neighbors(u), key=str) for u in graph.nodes()
        }

    # ------------------------------------------------------------------ #
    def run(
        self,
        algorithm_factory: Callable[[NodeId], NodeAlgorithm],
        max_rounds: int = 10_000,
        local_inputs: Optional[Mapping[NodeId, Any]] = None,
        stop_when_quiet: bool = True,
    ) -> SimulationResult:
        """Execute one protocol on every node and return the round statistics.

        Parameters
        ----------
        algorithm_factory:
            Called once per node id to create that node's protocol instance.
        max_rounds:
            Hard limit on the number of rounds; exceeding it raises
            :class:`ConvergenceError` unless ``stop_when_quiet`` ended the run
            earlier.
        local_inputs:
            Optional per-node application input, exposed to the protocol as
            ``ctx.local_edges``.
        stop_when_quiet:
            If ``True`` the simulation also stops when no messages are in
            flight and no node produced new messages this round, even if some
            nodes have not explicitly halted (global quiescence).  This models
            the standard convention that the round complexity of an algorithm
            is the index of the last round in which a message is sent.
        """
        nodes = self.graph.nodes()
        n = len(nodes)
        algos: Dict[NodeId, NodeAlgorithm] = {}
        ctxs: Dict[NodeId, NodeContext] = {}
        for u in nodes:
            algo = algorithm_factory(u)
            if not isinstance(algo, NodeAlgorithm):
                raise SimulationError(
                    f"algorithm_factory must return NodeAlgorithm instances, got {type(algo)!r}"
                )
            algos[u] = algo
            ctxs[u] = NodeContext(
                node=u,
                neighbors=self._neighbors[u],
                n=n,
                round_number=0,
                local_edges=None if local_inputs is None else local_inputs.get(u),
            )

        messages_sent = 0
        words_sent = 0
        max_words = 0

        def validate_and_collect(sender: NodeId, outbox: Mapping[NodeId, Any]) -> List[Message]:
            nonlocal messages_sent, words_sent, max_words
            out: List[Message] = []
            if not outbox:
                return out
            neighbor_set = set(self._neighbors[sender])
            for receiver, payload in outbox.items():
                if receiver not in neighbor_set:
                    raise SimulationError(
                        f"node {sender!r} attempted to message non-neighbour {receiver!r}"
                    )
                msg = Message(sender, receiver, payload)
                size = msg.size_words()
                if size > self.words_per_message and self.strict_bandwidth:
                    raise BandwidthExceededError(
                        f"message from {sender!r} to {receiver!r} is {size} words "
                        f"(budget {self.words_per_message})"
                    )
                messages_sent += 1
                words_sent += size
                max_words = max(max_words, size)
                out.append(msg)
            return out

        # Round 0 message generation (initialization).
        in_flight: List[Message] = []
        for u in nodes:
            in_flight.extend(validate_and_collect(u, algos[u].initialize(ctxs[u])))

        rounds = 0
        while rounds < max_rounds:
            all_halted = all(a.halted for a in algos.values())
            if all_halted and not in_flight:
                break
            if stop_when_quiet and not in_flight and rounds > 0:
                break
            rounds += 1
            # Deliver messages.
            inboxes: Dict[NodeId, List[Message]] = {u: [] for u in nodes}
            for msg in in_flight:
                inboxes[msg.receiver].append(msg)
            in_flight = []
            for u in nodes:
                algo = algos[u]
                if algo.halted and not inboxes[u]:
                    continue
                ctxs[u].round_number = rounds
                outbox = algo.on_round(ctxs[u], inboxes[u])
                in_flight.extend(validate_and_collect(u, outbox))
        else:
            raise ConvergenceError(
                f"simulation did not terminate within {max_rounds} rounds"
            )

        outputs = {u: algos[u].output for u in nodes}
        halted = all(a.halted for a in algos.values())
        return SimulationResult(
            rounds=rounds,
            outputs=outputs,
            messages_sent=messages_sent,
            words_sent=words_sent,
            max_words_per_edge_round=max_words,
            halted=halted,
        )
