"""Distributed Bellman-Ford single-source shortest paths.

This is the classical CONGEST baseline for exact SSSP: in every round each
node whose tentative distance improved sends the new value to its neighbours.
The round complexity is the number of *hops* of the deepest shortest path,
which is Θ(n) in the worst case — precisely the behaviour the paper's
Õ(τ²D + τ⁵)-round distance labeling improves on for low-treewidth graphs
(experiment E4).

The implementation works on weighted directed instances: messages travel along
the undirected communication edge but distances propagate only in the edge's
direction, as each node knows the weights/orientations of its incident input
edges (paper §2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.congest.message import Message
from repro.congest.network import CongestNetwork, SimulationResult
from repro.congest.node import NodeAlgorithm, NodeContext
from repro.errors import GraphError
from repro.graphs.digraph import WeightedDiGraph

NodeId = Hashable
INF = float("inf")


class BellmanFordNode(NodeAlgorithm):
    """Per-node distributed Bellman-Ford protocol.

    ``ctx.local_edges`` holds the list of incident *outgoing* input edges as
    ``(head, weight)`` pairs; a distance update at a node is pushed to the
    heads of its outgoing edges (i.e. distances flow along edge orientation).

    The protocol is event-driven: a round without incoming distance updates
    is a no-op, so the simulator's fast path skips idle nodes entirely.
    """

    event_driven = True

    def __init__(self, node: NodeId, source: NodeId) -> None:
        super().__init__()
        self.node = node
        self.source = source
        self.dist: float = INF
        self.parent: Optional[NodeId] = None
        self._best: Optional[Dict[NodeId, float]] = None

    def _push(self, ctx: NodeContext) -> Dict[NodeId, Any]:
        if ctx.local_edges is None:
            return {}
        best = self._best
        if best is None:
            # For each neighbour keep only the lightest parallel edge; the
            # incident edge list never changes, so compute this once.
            neighbor_set = set(ctx.neighbors)
            best = {}
            for head, weight in ctx.local_edges:
                if head == self.node or head not in neighbor_set:
                    continue
                if head not in best or weight < best[head]:
                    best[head] = weight
            self._best = best
        dist = self.dist
        return {head: ("dist", dist + weight) for head, weight in best.items()}

    def initialize(self, ctx: NodeContext) -> Dict[NodeId, Any]:
        if self.node == self.source:
            self.dist = 0.0
            self.output = (0.0, None)
            return self._push(ctx)
        self.output = (INF, None)
        return {}

    def on_round(self, ctx: NodeContext, inbox: List[Message]) -> Dict[NodeId, Any]:
        improved = False
        for msg in inbox:
            tag, d = msg.payload
            if tag != "dist":
                continue
            if d < self.dist:
                self.dist = d
                self.parent = msg.sender
                improved = True
        self.output = (self.dist, self.parent)
        if not improved:
            return {}
        return self._push(ctx)


@dataclass
class BellmanFordResult:
    """Result of a distributed Bellman-Ford execution."""

    distances: Dict[NodeId, float]
    parents: Dict[NodeId, Optional[NodeId]]
    rounds: int
    messages: int
    simulation: SimulationResult


def distributed_bellman_ford(
    instance: WeightedDiGraph,
    source: NodeId,
    max_rounds: Optional[int] = None,
    words_per_message: int = 8,
    engine: Optional[str] = None,
    trace=None,
) -> BellmanFordResult:
    """Run distributed Bellman-Ford SSSP from ``source`` on ``instance``.

    Returns exact shortest-path distances (``inf`` for unreachable nodes) plus
    the measured number of communication rounds.  ``engine``/``trace`` are
    passed through to :meth:`CongestNetwork.run` (the fast indexed engine is
    the default).
    """
    if not instance.has_node(source):
        raise GraphError(f"source {source!r} not in instance")
    comm = instance.underlying_graph()
    if comm.num_edges() == 0 and comm.num_nodes() > 1:
        raise GraphError("communication graph has no edges; SSSP cannot propagate")
    network = CongestNetwork(comm, words_per_message=words_per_message)
    local_inputs = {
        u: [(e.head, e.weight) for e in instance.out_edges(u)] for u in instance.nodes()
    }
    limit = max_rounds if max_rounds is not None else 4 * instance.num_nodes() + 16
    result = network.run(
        lambda u: BellmanFordNode(u, source),
        max_rounds=limit,
        local_inputs=local_inputs,
        stop_when_quiet=True,
        engine=engine,
        trace=trace,
    )
    distances = {u: out[0] for u, out in result.outputs.items() if out is not None}
    parents = {u: out[1] for u, out in result.outputs.items() if out is not None}
    return BellmanFordResult(
        distances=distances,
        parents=parents,
        rounds=result.rounds,
        messages=result.messages_sent,
        simulation=result,
    )
