"""Distributed Bellman-Ford single-source shortest paths.

This is the classical CONGEST baseline for exact SSSP: in every round each
node whose tentative distance improved sends the new value to its neighbours.
The round complexity is the number of *hops* of the deepest shortest path,
which is Θ(n) in the worst case — precisely the behaviour the paper's
Õ(τ²D + τ⁵)-round distance labeling improves on for low-treewidth graphs
(experiment E4).

The implementation works on weighted directed instances: messages travel along
the undirected communication edge but distances propagate only in the edge's
direction, as each node knows the weights/orientations of its incident input
edges (paper §2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Mapping, Optional, Tuple

from repro.congest.kernels import (
    PackedInbox,
    PackedSends,
    RoundKernel,
    StateSchema,
    StateVector,
)
from repro.congest.message import Message, PayloadSchema
from repro.congest.network import CongestNetwork, SimulationResult
from repro.congest.node import NodeAlgorithm, NodeContext
from repro.errors import GraphError
from repro.graphs.digraph import WeightedDiGraph

NodeId = Hashable
INF = float("inf")

#: Fixed-shape payload of every Bellman-Ford message: the scalar protocol's
#: ``("dist", d)`` tuple packed as one float64 per arc slot (3 words:
#: framing + tag + distance — identical to ``payload_size_words``).
BELLMAN_FORD_SCHEMA = PayloadSchema(fields=(("dist", "f8"),), tag="dist")


class BellmanFordNode(NodeAlgorithm):
    """Per-node distributed Bellman-Ford protocol.

    ``ctx.local_edges`` holds the list of incident *outgoing* input edges as
    ``(head, weight)`` pairs; a distance update at a node is pushed to the
    heads of its outgoing edges (i.e. distances flow along edge orientation).

    The protocol is event-driven: a round without incoming distance updates
    is a no-op, so the simulator's fast path skips idle nodes entirely.
    """

    event_driven = True

    def __init__(self, node: NodeId, source: NodeId) -> None:
        super().__init__()
        self.node = node
        self.source = source
        self.dist: float = INF
        self.parent: Optional[NodeId] = None
        self._best: Optional[Dict[NodeId, float]] = None

    def _push(self, ctx: NodeContext) -> Dict[NodeId, Any]:
        if ctx.local_edges is None:
            return {}
        best = self._best
        if best is None:
            # For each neighbour keep only the lightest parallel edge; the
            # incident edge list never changes, so compute this once.
            neighbor_set = set(ctx.neighbors)
            best = {}
            for head, weight in ctx.local_edges:
                if head == self.node or head not in neighbor_set:
                    continue
                if head not in best or weight < best[head]:
                    best[head] = weight
            self._best = best
        dist = self.dist
        return {head: ("dist", dist + weight) for head, weight in best.items()}

    def initialize(self, ctx: NodeContext) -> Dict[NodeId, Any]:
        if self.node == self.source:
            self.dist = 0.0
            self.output = (0.0, None)
            return self._push(ctx)
        self.output = (INF, None)
        return {}

    def on_round(self, ctx: NodeContext, inbox: List[Message]) -> Dict[NodeId, Any]:
        improved = False
        for msg in inbox:
            tag, d = msg.payload
            if tag != "dist":
                continue
            if d < self.dist:
                self.dist = d
                self.parent = msg.sender
                improved = True
        self.output = (self.dist, self.parent)
        if not improved:
            return {}
        return self._push(ctx)

    def on_link_recovery(self, ctx: NodeContext, neighbor: NodeId) -> Dict[NodeId, Any]:
        # Self-stabilizing re-announce: the neighbour may have missed this
        # node's distance while the link was down (or lost it by restarting
        # from scratch).  Distances only ever decrease and transient faults
        # leave the graph unchanged, so re-sending the current tentative
        # distance along the input edge reconverges the monotone protocol.
        if self.dist == INF or ctx.local_edges is None:
            return {}
        if self._best is None:
            self._push(ctx)
        weight = self._best.get(neighbor)
        if weight is None:
            return {}
        return {neighbor: ("dist", self.dist + weight)}


class BellmanFordKernel(RoundKernel):
    """Whole-round vectorized Bellman-Ford (``vectorized``/``sharded`` tiers).

    Bit-for-bit equivalent to :class:`BellmanFordNode` on the scalar tiers:

    * **state vectors** — ``dist`` (float64 tentative distances) and
      ``parent`` (int64 neighbour indices, ``-1`` for none);
    * **out-edge structure** — per directed input edge the owning CSR arc
      slot and the lightest parallel weight (the scalar ``_best`` map,
      precomputed once as an arc-aligned weight array);
    * **round** — segmented min over each receiver's inbox slice; the parent
      is the minimum-value sender with ties to the smallest sender index,
      exactly the scalar inbox scan (delivery order is ascending sender
      index, and only strict improvements update).  Improved nodes push
      ``dist + w`` on all their input out-arcs.

    All state is declared via :meth:`state_schema` and allocated
    *shard-locally* (``init(state, csr, shard)`` fills only the calling
    shard's node/arc rows — a worker's declared state is O((n+m)/num_shards)
    bytes), so the kernel runs unchanged (and bit-for-bit identically) on
    the multiprocess sharded tier: a receiver's inbox segment, its
    ``dist``/``parent`` rows and its outgoing arc slots all live in the
    shard that owns the receiver.
    """

    schema = BELLMAN_FORD_SCHEMA
    event_driven = True

    def __init__(self, source: NodeId, local_inputs: Mapping[NodeId, Any]) -> None:
        self.source = source
        self.local_inputs = local_inputs

    def state_schema(self, csr) -> StateSchema:
        return StateSchema(
            StateVector("dist", "node", "f8"),
            StateVector("parent", "node", "i8"),
            StateVector("w_arc", "arc", "f8"),
            StateVector("has_out", "arc", "?"),
        )

    def slice_for_shard(self, shard, csr) -> "BellmanFordKernel":
        # ``local_inputs`` is O(m) but ``init`` reads only the rows of nodes
        # the shard owns (it skips the rest), so ship each worker just its
        # own slice — per-worker header ingest drops to O(m / num_shards).
        if shard.num_nodes >= csr.num_nodes:
            return self
        index_of = csr.indexed.index_of
        owned = {
            u: edges
            for u, edges in self.local_inputs.items()
            if (i := index_of.get(u)) is not None and shard.owns_node(i)
        }
        return type(self)(self.source, owned)

    def init(self, state: Dict[str, Any], csr, shard) -> Optional[PackedSends]:
        import numpy as np

        idx = csr.indexed
        # Arc-aligned weights of the directed input edges, for the shard's
        # own arc slots only: w_arc[p - arc_lo] is the lightest parallel
        # input edge from arc p's owner to its neighbour (inf when that
        # owner has no input edge to that neighbour).
        w_arc = np.full(shard.num_arcs, INF, dtype=np.float64)
        has_out = np.zeros(shard.num_arcs, dtype=bool)
        indptr = idx.indptr
        for u, edges in self.local_inputs.items():
            i = idx.index_of.get(u)
            if i is None or not edges or not shard.owns_node(i):
                continue
            lo, hi = indptr[i], indptr[i + 1]
            pos_of = {idx.neighbor_ids[i][p - lo]: p for p in range(lo, hi)}
            for head, weight in edges:
                if head == u:
                    continue
                p = pos_of.get(head)
                if p is None:
                    continue
                q = p - shard.arc_lo
                has_out[q] = True
                if weight < w_arc[q]:
                    w_arc[q] = weight

        dist = np.full(shard.num_nodes, INF, dtype=np.float64)
        parent = np.full(shard.num_nodes, -1, dtype=np.int64)
        state["dist"] = dist
        state["parent"] = parent
        state["w_arc"] = w_arc
        state["has_out"] = has_out
        # Preallocated round buffers (worker-local, not schema-declared):
        # every round's traffic is written into the same schema-typed
        # arc-slot array, and the loop-invariant local-owner table (the
        # state row of each owned arc's owner) is built once here.
        state["send"] = self.schema.alloc(shard.num_arcs)
        state["send_mask"] = np.zeros(shard.num_arcs, dtype=bool)
        state["arc_owner_local"] = csr.arc_owner[shard.arc_slice] - shard.node_lo

        src = idx.index_of.get(self.source)
        if src is None or not shard.owns_node(src):
            return None
        dist[src - shard.node_lo] = 0.0
        mask = state["send_mask"]
        lo = int(indptr[src]) - shard.arc_lo
        hi = int(indptr[src + 1]) - shard.arc_lo
        mask[lo:hi] = has_out[lo:hi]
        if not mask.any():
            return None
        return PackedSends(mask, self._fill_send(state, csr, shard))

    def _fill_send(self, state: Dict[str, Any], csr, shard) -> Dict[str, Any]:
        """Write ``dist + w`` for the shard's arcs into the reusable buffer."""
        import numpy as np

        buffers = state["send"]
        np.add(
            state["dist"][state["arc_owner_local"]], state["w_arc"],
            out=buffers["dist"],
        )
        return buffers

    def round(self, state: Dict[str, Any], inbox: PackedInbox,
              inbox_senders, csr, shard) -> Optional[PackedSends]:
        import numpy as np

        if len(inbox) == 0:
            return None
        vals = inbox["dist"]
        starts, receivers = inbox.segment_starts(csr)
        recv_l = receivers - shard.node_lo  # local state rows
        dist = state["dist"]

        # Parent choice replicates the scalar inbox scan: the first strict
        # improvement reaching the minimum wins, and delivery order is
        # ascending sender index — i.e. the minimum-index sender among the
        # minimum-value messages.  The segmented min/argmin pass runs on the
        # active _accel backend (plain numpy, or a fused numba loop).
        from repro import _accel

        seg_min, seg_parent = _accel.op("bf_segmented_min_parent")(
            vals, starts, inbox_senders, csr.num_nodes
        )
        improved = seg_min < dist[recv_l]
        if not improved.any():
            return None

        upd = recv_l[improved]
        dist[upd] = seg_min[improved]
        state["parent"][upd] = seg_parent[improved]

        improved_nodes = np.zeros(shard.num_nodes, dtype=bool)
        improved_nodes[upd] = True
        mask = state["send_mask"]
        m = improved_nodes[state["arc_owner_local"]] & state["has_out"]
        mask[:] = m
        if not m.any():
            return None
        return PackedSends(mask, self._fill_send(state, csr, shard))

    def outputs(self, state: Dict[str, Any], csr) -> Dict[NodeId, Any]:
        node_ids = csr.node_ids
        dist = state["dist"]
        parent = state["parent"]
        return {
            node_ids[i]: (
                float(dist[i]),
                node_ids[int(parent[i])] if parent[i] >= 0 else None,
            )
            for i in range(csr.num_nodes)
        }


@dataclass
class BellmanFordResult:
    """Result of a distributed Bellman-Ford execution."""

    distances: Dict[NodeId, float]
    parents: Dict[NodeId, Optional[NodeId]]
    rounds: int
    messages: int
    simulation: SimulationResult


def distributed_bellman_ford(
    instance: WeightedDiGraph,
    source: NodeId,
    max_rounds: Optional[int] = None,
    words_per_message: int = 8,
    engine: Optional[str] = None,
    trace=None,
    num_shards: Optional[int] = None,
    shard_pool=None,
    delay_model=None,
    transport=None,
    fault_schedule=None,
    scheduler: Optional[str] = None,
    accel: Optional[str] = None,
) -> BellmanFordResult:
    """Run distributed Bellman-Ford SSSP from ``source`` on ``instance``.

    Returns exact shortest-path distances (``inf`` for unreachable nodes) plus
    the measured number of communication rounds.  ``engine``/``trace`` are
    passed through to :meth:`CongestNetwork.run` (the fast indexed engine is
    the default; ``engine="vectorized"`` runs the whole-round
    :class:`BellmanFordKernel`, ``engine="sharded"`` distributes it over
    ``num_shards`` worker processes — reused across calls when a
    :class:`~repro.congest.engine.ShardPool` is passed via ``shard_pool``,
    with the boundary exchange carried by ``transport`` (``"shm"`` arena or
    ``"socket"`` TCP) — and ``engine="async"`` executes the scalar protocol
    on the event-driven scheduler under ``delay_model``, with
    schedule-invariant distances and parents — all with identical results).
    ``scheduler`` selects the async tier's event queue (``"bucketed"``
    calendar queue, the default, or the ``"heap"`` reference — identical
    runs) and ``accel`` the compiled-kernel backend of the numpy tiers
    (``"auto"``/``"python"``/``"numba"``, see :mod:`repro._accel`).

    ``fault_schedule`` (a :class:`~repro.congest.faults.FaultSchedule` or
    seeded :class:`~repro.congest.faults.FaultModel`) injects node/edge
    crash+recover transitions; it implies ``engine="async"`` when no engine
    is requested, requires the source to eventually recover (a source crashed
    forever can never re-seed distance 0 — rejected with
    :class:`~repro.errors.FaultInjectionError`), and raises the default round
    limit to cover the fault horizon plus reconvergence.
    """
    if not instance.has_node(source):
        raise GraphError(f"source {source!r} not in instance")
    comm = instance.underlying_graph()
    if comm.num_edges() == 0 and comm.num_nodes() > 1:
        raise GraphError("communication graph has no edges; SSSP cannot propagate")
    network = CongestNetwork(comm, words_per_message=words_per_message)
    local_inputs = {
        u: [(e.head, e.weight) for e in instance.out_edges(u)] for u in instance.nodes()
    }
    limit = max_rounds if max_rounds is not None else 4 * instance.num_nodes() + 16
    if fault_schedule is not None:
        from repro.congest.faults import resolve_fault_schedule

        if engine is None:
            engine = "async"
        fault_schedule = resolve_fault_schedule(fault_schedule, network.indexed)
        fault_schedule.ensure_eventual_recovery([source], protocol="Bellman-Ford SSSP")
        if max_rounds is None:
            limit = 4 * instance.num_nodes() + 2 * fault_schedule.horizon + 32
    result = network.run(
        lambda u: BellmanFordNode(u, source),
        max_rounds=limit,
        local_inputs=local_inputs,
        stop_when_quiet=True,
        engine=engine,
        trace=trace,
        kernel=BellmanFordKernel(source, local_inputs),
        num_shards=num_shards,
        shard_pool=shard_pool,
        delay_model=delay_model,
        transport=transport,
        fault_schedule=fault_schedule,
        scheduler=scheduler,
        accel=accel,
    )
    distances = {u: out[0] for u, out in result.outputs.items() if out is not None}
    parents = {u: out[1] for u, out in result.outputs.items() if out is not None}
    return BellmanFordResult(
        distances=distances,
        parents=parents,
        rounds=result.rounds,
        messages=result.messages_sent,
        simulation=result,
    )
