"""Message-level CONGEST primitives.

These are genuinely distributed (per-node, message-passing) implementations of
the basic building blocks used throughout the paper:

* :func:`build_bfs_tree` — BFS tree from a root in O(D) rounds.
* :func:`broadcast` — flooding broadcast of a value from a root in O(D) rounds.
* :func:`flood_chunks` — pipelined flooding of a *sequence* of chunks from a
  root in O(D + #chunks) rounds (the BCT-style broadcast of the paper's
  labeling construction: one chunk per neighbour per round, FIFO queues).
* :func:`convergecast_sum` — aggregation of values up a rooted tree in
  O(depth) rounds.
* :func:`elect_leader` — minimum-identifier leader election in O(D) rounds.

Each function runs the corresponding protocol on a
:class:`~repro.congest.network.CongestNetwork` and returns both the logical
result and the measured round count.  The higher layers of the library use
these measurements to calibrate the primitive-level cost model (see
:mod:`repro.core.rounds`).

Every primitive runs on all five engine tiers.  The scalar per-node
protocols below are the reference semantics (``legacy``/``fast``/``async``);
each helper also attaches the matching whole-round
:mod:`~repro.congest.kernels` kernel — :class:`BFSTreeKernel`,
:class:`FloodingKernel`, :class:`LeaderElectionKernel`,
:class:`ConvergecastKernel` — so ``engine="vectorized"`` and
``engine="sharded"`` (any shard count) produce bit-for-bit identical
outputs, rounds and ledger.  ``convergecast_sum`` attaches its kernel only
for the default summing combiner over plain numeric values; a custom
``combine`` falls back to the scalar tiers.  The helpers forward
``scheduler=`` (async event queue: ``"bucketed"``/``"heap"``) and ``accel=``
(numpy-tier compiled backend: ``"auto"``/``"python"``/``"numba"``) to
:meth:`CongestNetwork.run`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.congest.message import Message
from repro.congest.network import CongestNetwork, SimulationResult
from repro.congest.node import NodeAlgorithm, NodeContext
from repro.errors import GraphError
from repro.graphs.graph import Graph

NodeId = Hashable


# --------------------------------------------------------------------------- #
# BFS tree
# --------------------------------------------------------------------------- #
class BFSTreeNode(NodeAlgorithm):
    """Per-node protocol constructing a BFS tree rooted at ``root``.

    Each node outputs ``(parent, depth)``; the root outputs ``(None, 0)``.
    The protocol is event-driven (idle rounds are no-ops).
    """

    event_driven = True

    def __init__(self, node: NodeId, root: NodeId) -> None:
        super().__init__()
        self.node = node
        self.root = root
        self.parent: Optional[NodeId] = None
        self.depth: Optional[int] = None

    def initialize(self, ctx: NodeContext) -> Dict[NodeId, Any]:
        if self.node == self.root:
            self.depth = 0
            self.output = (None, 0)
            self.halt()
            return {v: ("bfs", 0) for v in ctx.neighbors}
        return {}

    def on_round(self, ctx: NodeContext, inbox: List[Message]) -> Dict[NodeId, Any]:
        best: Optional[Tuple[int, NodeId]] = None
        for msg in inbox:
            tag, d = msg.payload
            if tag != "bfs":
                continue
            cand = (d, msg.sender)
            if best is None or cand < best:
                best = cand
        # Accept strict improvements even after halting.  Fault-free this
        # never fires (the first receipt is already at BFS distance, so every
        # later offer is >= depth - 1); under message loss the first offer a
        # node hears may arrive over a detour, and the correct smaller depth
        # shows up later via a recovery re-announcement — adopting it (and
        # re-flooding) is what makes the tree self-stabilize back to the
        # centralized BFS depths.
        if best is None or (self.depth is not None and best[0] + 1 >= self.depth):
            return {}
        self.depth = best[0] + 1
        self.parent = best[1]
        self.output = (self.parent, self.depth)
        self.halt()
        return {v: ("bfs", self.depth) for v in ctx.neighbors if v != self.parent}

    def on_link_recovery(self, ctx: NodeContext, neighbor: NodeId) -> Dict[NodeId, Any]:
        # Re-offer this node's depth across the healed link: the neighbour
        # may have missed the original flood (or restarted with no state).
        if self.depth is None:
            return {}
        return {neighbor: ("bfs", self.depth)}


def build_bfs_tree(
    network: CongestNetwork,
    root: NodeId,
    max_rounds: int = 100_000,
    engine: Optional[str] = None,
    trace=None,
    num_shards: Optional[int] = None,
    shard_pool=None,
    delay_model=None,
    transport=None,
    fault_schedule=None,
    scheduler: Optional[str] = None,
    accel: Optional[str] = None,
) -> Tuple[Dict[NodeId, Optional[NodeId]], Dict[NodeId, int], SimulationResult]:
    """Construct a BFS tree rooted at ``root``.

    Returns ``(parent, depth, simulation_result)``; nodes unreachable from the
    root have no entry in either mapping.  ``engine``/``trace`` are passed
    through to :meth:`CongestNetwork.run`.  With ``engine="vectorized"`` the
    construction runs as the whole-round
    :class:`~repro.congest.kernels.BFSTreeKernel`, ``engine="sharded"``
    distributes the same kernel over ``num_shards`` worker processes, and
    ``engine="async"`` executes the scalar protocol on the event-driven
    scheduler under ``delay_model`` — identical parents/depths and measured
    traffic on every tier.  ``fault_schedule`` injects seeded node/edge
    crash+recover transitions on the async tier (implied when no engine is
    requested); the root must eventually recover, since a permanently dead
    root can never re-seed depth 0.
    """
    if not network.graph.has_node(root):
        raise GraphError(f"root {root!r} not in network")
    from repro.congest.kernels import BFSTreeKernel

    if fault_schedule is not None:
        from repro.congest.faults import resolve_fault_schedule

        if engine is None:
            engine = "async"
        fault_schedule = resolve_fault_schedule(
            fault_schedule, network.graph.to_indexed()
        )
        fault_schedule.ensure_eventual_recovery([root], protocol="BFS tree construction")
    result = network.run(
        lambda u: BFSTreeNode(u, root),
        max_rounds=max_rounds,
        engine=engine,
        trace=trace,
        kernel=BFSTreeKernel(root),
        num_shards=num_shards,
        shard_pool=shard_pool,
        delay_model=delay_model,
        transport=transport,
        fault_schedule=fault_schedule,
        scheduler=scheduler,
        accel=accel,
    )
    parent: Dict[NodeId, Optional[NodeId]] = {}
    depth: Dict[NodeId, int] = {}
    for u, out in result.outputs.items():
        if out is None:
            continue
        parent[u], depth[u] = out
    return parent, depth, result


# --------------------------------------------------------------------------- #
# Broadcast
# --------------------------------------------------------------------------- #
class FloodBroadcastNode(NodeAlgorithm):
    """Flood a single value from ``root`` to all nodes (O(D) rounds).

    Event-driven: a node acts exactly once, on first receipt.
    """

    event_driven = True

    def __init__(self, node: NodeId, root: NodeId, value: Any) -> None:
        super().__init__()
        self.node = node
        self.root = root
        self.value = value

    def initialize(self, ctx: NodeContext) -> Dict[NodeId, Any]:
        if self.node == self.root:
            self.output = self.value
            self.halt()
            return {v: self.value for v in ctx.neighbors}
        return {}

    def on_round(self, ctx: NodeContext, inbox: List[Message]) -> Dict[NodeId, Any]:
        # Guard on halted, not on the output value: broadcasting None must
        # not make duplicate deliveries look like a first receipt.
        if self.halted or not inbox:
            return {}
        self.output = inbox[0].payload
        self.halt()
        return {v: self.output for v in ctx.neighbors if v != inbox[0].sender}

    def on_link_recovery(self, ctx: NodeContext, neighbor: NodeId) -> Dict[NodeId, Any]:
        # Re-flood the value across the healed link; an informed node is
        # halted, so ``halted`` is exactly "this node holds the value".
        if not self.halted:
            return {}
        return {neighbor: self.output}


def broadcast(
    network: CongestNetwork,
    root: NodeId,
    value: Any,
    max_rounds: int = 100_000,
    engine: Optional[str] = None,
    trace=None,
    delay_model=None,
    fault_schedule=None,
    scheduler: Optional[str] = None,
    accel: Optional[str] = None,
) -> Tuple[Dict[NodeId, Any], SimulationResult]:
    """Broadcast ``value`` from ``root``; returns ``(received_values, result)``.

    ``fault_schedule`` injects seeded crash+recover transitions on the async
    tier (implied when no engine is requested); the root must eventually
    recover.
    """
    if fault_schedule is not None:
        from repro.congest.faults import resolve_fault_schedule

        if engine is None:
            engine = "async"
        fault_schedule = resolve_fault_schedule(
            fault_schedule, network.graph.to_indexed()
        )
        fault_schedule.ensure_eventual_recovery([root], protocol="flood broadcast")
    result = network.run(
        lambda u: FloodBroadcastNode(u, root, value),
        max_rounds=max_rounds,
        engine=engine,
        trace=trace,
        delay_model=delay_model,
        fault_schedule=fault_schedule,
        scheduler=scheduler,
        accel=accel,
    )
    return dict(result.outputs), result


# --------------------------------------------------------------------------- #
# Pipelined multi-chunk flooding (BCT-style broadcast)
# --------------------------------------------------------------------------- #
class ChunkFloodNode(NodeAlgorithm):
    """Pipelined flooding of an ordered chunk sequence from ``root``.

    The root enqueues its ``C`` chunks as ``(k, C, payload)`` messages; every
    node forwards each chunk it learns to all neighbours except the one it
    came from, draining at most one chunk per neighbour per round (CONGEST
    discipline), so the broadcast pipelines in O(D + C) rounds.  A node halts
    once it holds all ``C`` chunks and has drained its queues; its output is
    the reassembled payload tuple.

    This is the generic transport that
    :class:`~repro.labeling.sssp.LabelBroadcastNode` subclasses with label
    decoding (overriding :meth:`_make_chunks` / :meth:`_finish`); the
    labeling construction uses it directly to *measure* the per-level H_x
    broadcasts of the paper's BCT routine on the engine.  ``self.chunks``
    holds the full wire chunk per index, so subclasses can define their own
    wire layout after the ``(k, total, ...)`` framing.
    """

    def __init__(self, node: NodeId, root: NodeId, chunks: Sequence[Any] = ()) -> None:
        super().__init__()
        self.node = node
        self.root = root
        self.source_chunks = chunks
        self.chunks: Dict[int, Any] = {}  # chunk index -> full wire chunk
        self.total: Optional[int] = None
        self.queues: Dict[NodeId, deque] = {}

    # -- subclass hooks -------------------------------------------------- #
    def _make_chunks(self) -> List[Any]:
        """Return the root's wire chunks, each starting with ``(k, total)``."""
        total = len(self.source_chunks)
        return [(k, total, payload) for k, payload in enumerate(self.source_chunks)]

    def _finish(self) -> None:
        """Set ``self.output`` from the complete ``self.chunks`` table."""
        self.output = tuple(self.chunks[k][2] for k in range(self.total))

    # -- shared transport mechanics -------------------------------------- #
    def _finish_if_complete(self) -> None:
        if self.total is None or len(self.chunks) < self.total:
            return
        if any(self.queues.values()):
            return
        self._finish()
        self.halt()

    def _learn(self, chunk, exclude: Optional[NodeId], ctx: NodeContext) -> None:
        k = chunk[0]
        if k in self.chunks:
            return
        self.total = chunk[1]
        self.chunks[k] = chunk
        for v in ctx.neighbors:
            if v == exclude:
                continue
            self.queues.setdefault(v, deque()).append(chunk)

    def _drain(self) -> Dict[NodeId, Any]:
        out: Dict[NodeId, Any] = {}
        for v, q in self.queues.items():
            if q:
                out[v] = q.popleft()
        self._finish_if_complete()
        return out

    def initialize(self, ctx: NodeContext) -> Dict[NodeId, Any]:
        if self.node == self.root:
            wire = self._make_chunks()
            self.total = len(wire)
            for chunk in wire:
                self.chunks[chunk[0]] = chunk
                for v in ctx.neighbors:
                    self.queues.setdefault(v, deque()).append(chunk)
            return self._drain()
        return {}

    def on_round(self, ctx: NodeContext, inbox: List[Message]) -> Dict[NodeId, Any]:
        if self.halted:
            return {}
        for msg in inbox:
            self._learn(msg.payload, msg.sender, ctx)
        return self._drain()

    def on_link_recovery(self, ctx: NodeContext, neighbor: NodeId) -> Dict[NodeId, Any]:
        # The neighbour may have missed any subset of the chunks while the
        # link (or a node) was down: requeue everything this node holds for
        # that neighbour and resume draining one chunk per round (duplicates
        # are deduplicated by chunk index on receipt).  Un-halting is safe —
        # ``_finish_if_complete`` halts again once the queues drain.
        if not self.chunks:
            return {}
        q = self.queues.setdefault(neighbor, deque())
        q.clear()
        for k in sorted(self.chunks):
            q.append(self.chunks[k])
        self._halted = False
        return {}


def flood_chunks(
    network: CongestNetwork,
    root: NodeId,
    chunks: Sequence[Any],
    max_rounds: int = 1_000_000,
    engine: Optional[str] = None,
    trace=None,
    num_shards: Optional[int] = None,
    shard_pool=None,
    delay_model=None,
    transport=None,
    fault_schedule=None,
    scheduler: Optional[str] = None,
    accel: Optional[str] = None,
) -> Tuple[Dict[NodeId, Any], SimulationResult]:
    """Flood the ordered ``chunks`` from ``root``; O(D + len(chunks)) rounds.

    Returns ``(received, result)`` where ``received`` maps every node that
    completed the broadcast to the reassembled chunk tuple.  Each message
    carries one chunk plus (index, count) framing; size the network's
    ``words_per_message`` to the largest chunk.

    With ``engine="vectorized"`` the broadcast runs as the whole-round
    :class:`~repro.congest.kernels.FloodingKernel`, and with
    ``engine="sharded"`` the same kernel is distributed over ``num_shards``
    worker processes — identical measured rounds and traffic on every tier,
    so engine-measured BCT broadcasts (see
    :func:`~repro.labeling.construction.build_distance_labeling`) can use
    any of them.
    """
    if not network.graph.has_node(root):
        raise GraphError(f"root {root!r} not in network")
    from repro.congest.kernels import FloodingKernel

    if fault_schedule is not None:
        from repro.congest.faults import resolve_fault_schedule

        if engine is None:
            engine = "async"
        fault_schedule = resolve_fault_schedule(
            fault_schedule, network.graph.to_indexed()
        )
        fault_schedule.ensure_eventual_recovery([root], protocol="chunk flooding")
    # Always attach the kernel (construction is cheap); the dispatcher in
    # CongestNetwork.run uses it only when a kernel tier actually runs, so
    # the protocol follows the network's default engine too.
    result = network.run(
        lambda u: ChunkFloodNode(u, root, chunks),
        max_rounds=max_rounds,
        engine=engine,
        trace=trace,
        kernel=FloodingKernel(root, chunks),
        num_shards=num_shards,
        shard_pool=shard_pool,
        delay_model=delay_model,
        transport=transport,
        fault_schedule=fault_schedule,
        scheduler=scheduler,
        accel=accel,
    )
    received = {u: out for u, out in result.outputs.items() if out is not None}
    return received, result


# --------------------------------------------------------------------------- #
# Convergecast (tree aggregation)
# --------------------------------------------------------------------------- #
class ConvergecastNode(NodeAlgorithm):
    """Aggregate per-node values up a rooted tree with an associative operator.

    Each node knows its parent and children in the tree (supplied at
    construction).  Leaves send immediately; internal nodes wait until all
    children have reported.  The root's output is the global aggregate.
    Event-driven: progress only happens when a child's report arrives.
    """

    event_driven = True

    def __init__(
        self,
        node: NodeId,
        parent: Optional[NodeId],
        children: List[NodeId],
        value: Any,
        combine: Callable[[Any, Any], Any],
    ) -> None:
        super().__init__()
        self.node = node
        self.parent = parent
        self.children = list(children)
        self.pending = set(children)
        self.acc = value
        self.combine = combine

    def _maybe_send(self) -> Dict[NodeId, Any]:
        if self.pending:
            return {}
        self.output = self.acc
        self.halt()
        if self.parent is not None:
            return {self.parent: self.acc}
        return {}

    def initialize(self, ctx: NodeContext) -> Dict[NodeId, Any]:
        return self._maybe_send()

    def on_round(self, ctx: NodeContext, inbox: List[Message]) -> Dict[NodeId, Any]:
        if self.halted:
            return {}
        for msg in inbox:
            if msg.sender in self.pending:
                self.pending.discard(msg.sender)
                self.acc = self.combine(self.acc, msg.payload)
        return self._maybe_send()

    def on_link_recovery(self, ctx: NodeContext, neighbor: NodeId) -> Dict[NodeId, Any]:
        # Re-send this node's report if the healed link leads to its tree
        # parent: a restarted parent re-collects from scratch, and a parent
        # that never lost the first report deduplicates via ``pending``.
        if self.halted and self.parent == neighbor:
            return {self.parent: self.acc}
        return {}


def _sum_combine(a: Any, b: Any) -> Any:
    """Default convergecast combiner.

    Module-level (not a lambda) so :func:`convergecast_sum` can recognise
    the default by identity and attach
    :class:`~repro.congest.kernels.ConvergecastKernel` for the kernel tiers.
    """
    return a + b


def _kernel_safe_value(v: Any) -> bool:
    """Whether ``v`` sums exactly in the kernel's ``i8``/``f8`` vectors."""
    if isinstance(v, bool) or isinstance(v, float):
        return True
    return isinstance(v, int) and -(2**31) <= v <= 2**31


def convergecast_sum(
    network: CongestNetwork,
    parent: Dict[NodeId, Optional[NodeId]],
    values: Dict[NodeId, Any],
    combine: Callable[[Any, Any], Any] = _sum_combine,
    max_rounds: int = 100_000,
    engine: Optional[str] = None,
    trace=None,
    num_shards: Optional[int] = None,
    shard_pool=None,
    delay_model=None,
    transport=None,
    fault_schedule=None,
    scheduler: Optional[str] = None,
    accel: Optional[str] = None,
) -> Tuple[Any, SimulationResult]:
    """Aggregate ``values`` up the tree given as a child->parent map.

    Returns ``(root_aggregate, simulation_result)``.  With the default
    summing ``combine`` over plain numeric values the helper attaches
    :class:`~repro.congest.kernels.ConvergecastKernel`, so
    ``engine="vectorized"``/``"sharded"`` aggregate with whole-round
    segmented sums — bit-for-bit the scalar result; a custom ``combine`` (or
    exotic value types) runs on the scalar tiers only.  ``fault_schedule``
    injects seeded crash+recover transitions on the async tier (implied when
    no engine is requested); the tree root must eventually recover, since
    the aggregate is read off it.
    """
    children: Dict[NodeId, List[NodeId]] = {u: [] for u in parent}
    root = None
    for u, p in parent.items():
        if p is None:
            root = u
        else:
            children[p].append(u)
    if root is None:
        raise GraphError("tree has no root")
    if fault_schedule is not None:
        from repro.congest.faults import resolve_fault_schedule

        if engine is None:
            engine = "async"
        fault_schedule = resolve_fault_schedule(
            fault_schedule, network.graph.to_indexed()
        )
        fault_schedule.ensure_eventual_recovery([root], protocol="convergecast")

    def factory(u: NodeId) -> NodeAlgorithm:
        if u in parent:
            return ConvergecastNode(
                u, parent[u], children[u], values.get(u, 0), combine
            )
        # Nodes outside the tree stay silent.
        algo = NodeAlgorithm()
        algo.halt()
        algo.on_round = lambda ctx, inbox: {}  # type: ignore[assignment]
        return algo

    kernel = None
    if combine is _sum_combine and all(
        _kernel_safe_value(values.get(u, 0)) for u in parent
    ):
        from repro.congest.kernels import ConvergecastKernel

        kernel = ConvergecastKernel(parent, values)
    result = network.run(
        factory, max_rounds=max_rounds, engine=engine, trace=trace,
        kernel=kernel, num_shards=num_shards, shard_pool=shard_pool,
        delay_model=delay_model, transport=transport,
        fault_schedule=fault_schedule, scheduler=scheduler, accel=accel,
    )
    return result.outputs[root], result


# --------------------------------------------------------------------------- #
# Leader election
# --------------------------------------------------------------------------- #
class LeaderElectionNode(NodeAlgorithm):
    """Minimum-identifier leader election by flooding (O(D) rounds)."""

    def __init__(self, node: NodeId) -> None:
        super().__init__()
        self.node = node
        self.best: Optional[str] = None
        self.best_raw: Any = None

    @staticmethod
    def _key(x: Any) -> str:
        return f"{type(x).__name__}:{x!r}"

    def initialize(self, ctx: NodeContext) -> Dict[NodeId, Any]:
        self.best = self._key(self.node)
        self.best_raw = self.node
        self.output = self.best_raw
        return {v: self.node for v in ctx.neighbors}

    def on_round(self, ctx: NodeContext, inbox: List[Message]) -> Dict[NodeId, Any]:
        improved = False
        for msg in inbox:
            k = self._key(msg.payload)
            if self.best is None or k < self.best:
                self.best = k
                self.best_raw = msg.payload
                improved = True
        self.output = self.best_raw
        if not improved:
            self.halt()
            return {}
        return {v: self.best_raw for v in ctx.neighbors}

    def on_link_recovery(self, ctx: NodeContext, neighbor: NodeId) -> Dict[NodeId, Any]:
        # Re-announce the best identifier seen so far: a restarted neighbour
        # knows only its own id and adopts (then re-floods) any smaller one.
        if self.best is None:
            return {}
        return {neighbor: self.best_raw}


def elect_leader(
    network: CongestNetwork,
    max_rounds: int = 100_000,
    engine: Optional[str] = None,
    trace=None,
    num_shards: Optional[int] = None,
    shard_pool=None,
    delay_model=None,
    transport=None,
    fault_schedule=None,
    scheduler: Optional[str] = None,
    accel: Optional[str] = None,
) -> Tuple[NodeId, SimulationResult]:
    """Elect the minimum-id node as leader; returns ``(leader, result)``.

    Raises :class:`GraphError` if the network is disconnected (nodes would
    disagree on the leader).  The helper attaches
    :class:`~repro.congest.kernels.LeaderElectionKernel`, so
    ``engine="vectorized"``/``"sharded"`` flood precomputed id ranks with
    whole-round segmented minima — bit-for-bit the scalar election on any
    shard count.  ``fault_schedule`` injects seeded crash+recover
    transitions on the async tier (implied when no engine is requested);
    every node must eventually recover, since the min-id flood only
    converges once every node can report the leader.
    """
    if not network.graph.is_connected():
        raise GraphError("leader election requires a connected network")
    if fault_schedule is not None:
        from repro.congest.faults import resolve_fault_schedule

        if engine is None:
            engine = "async"
        fault_schedule = resolve_fault_schedule(
            fault_schedule, network.graph.to_indexed()
        )
        fault_schedule.ensure_eventual_recovery(
            network.graph.nodes(), protocol="leader election"
        )
    from repro.congest.kernels import LeaderElectionKernel

    result = network.run(
        lambda u: LeaderElectionNode(u), max_rounds=max_rounds, engine=engine,
        trace=trace, kernel=LeaderElectionKernel(),
        num_shards=num_shards, shard_pool=shard_pool,
        delay_model=delay_model, transport=transport,
        fault_schedule=fault_schedule, scheduler=scheduler, accel=accel,
    )
    leaders = set(map(str, result.outputs.values()))
    if len(leaders) != 1:
        raise GraphError("leader election did not converge to a unique leader")
    leader = next(iter(result.outputs.values()))
    return leader, result
