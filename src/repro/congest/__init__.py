"""Message-level CONGEST model simulator and baseline distributed algorithms.

The CONGEST model (paper §2.1): the network is a simple undirected unweighted
graph whose nodes are processors with unique O(log n)-bit identifiers.
Computation proceeds in synchronous rounds; in each round every node may send
one O(log n)-bit message to each neighbour, receives all messages sent to it
in the same round, and performs arbitrary local computation.  Only the number
of communication rounds is measured.

This subpackage provides:

* :class:`~repro.congest.network.CongestNetwork` — the synchronous simulator,
  which enforces the per-edge bandwidth budget and counts rounds.
* :mod:`~repro.congest.engine` — the indexed (CSR) fast-path execution engine
  behind ``CongestNetwork.run``, plus :class:`SimulationTrace` for
  round-by-round statistics.  A dict-based legacy loop is kept for
  equivalence testing (``engine="legacy"``).
* :class:`~repro.congest.node.NodeAlgorithm` — base class for per-node
  protocols.
* :mod:`~repro.congest.primitives` — message-level BFS tree construction,
  flooding broadcast, convergecast and leader election.  These ground the
  primitive-level cost model used by the higher layers.
* :mod:`~repro.congest.bellman_ford` — the classical distributed Bellman-Ford
  SSSP algorithm, used as the general-graph baseline the paper's distance
  labeling is compared against.
"""

from repro.congest.message import Message, payload_size_words
from repro.congest.node import NodeAlgorithm, NodeContext
from repro.congest.engine import RoundStats, SimulationTrace
from repro.congest.network import CongestNetwork, SimulationResult
from repro.congest import primitives, bellman_ford

__all__ = [
    "Message",
    "payload_size_words",
    "NodeAlgorithm",
    "NodeContext",
    "RoundStats",
    "SimulationTrace",
    "CongestNetwork",
    "SimulationResult",
    "primitives",
    "bellman_ford",
]
