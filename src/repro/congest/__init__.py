"""Message-level CONGEST model simulator and baseline distributed algorithms.

The CONGEST model (paper §2.1): the network is a simple undirected unweighted
graph whose nodes are processors with unique O(log n)-bit identifiers.
Computation proceeds in synchronous rounds; in each round every node may send
one O(log n)-bit message to each neighbour, receives all messages sent to it
in the same round, and performs arbitrary local computation.  Only the number
of communication rounds is measured.

This subpackage provides:

* :class:`~repro.congest.network.CongestNetwork` — the synchronous simulator,
  which enforces the per-edge bandwidth budget and counts rounds.
* :mod:`~repro.congest.engine` — the synchronous execution tiers behind
  ``CongestNetwork.run`` (legacy reference loop → indexed ``fast`` worklist →
  ``vectorized`` whole-round kernels → multiprocess ``sharded`` workers),
  plus :class:`SimulationTrace` for round-by-round statistics.  The tiers
  are cross-certified by a randomized equivalence suite.
* :mod:`~repro.congest.transport` — the sharded tier's pluggable boundary
  exchange: :class:`SharedMemoryTransport` (one arena, pool barrier) and
  :class:`SocketTransport` (localhost TCP, length-prefixed frames, per-peer
  bytes-on-the-wire accounting), bit-for-bit interchangeable.
* :mod:`~repro.congest.scheduler` — the fifth, ``async`` tier: a
  discrete-event scheduler with pluggable seeded :class:`DelayModel`\\ s
  (:class:`UnitDelay`, :class:`UniformDelay`, :class:`PerArcDelay`,
  :class:`SlowLinkDelay`) and an α-synchronizer adapter, bit-for-bit equal
  to the synchronous tiers under unit delays and output-schedule-invariant
  under every seeded model.
* :mod:`~repro.congest.kernels` — the :class:`RoundKernel` API of the
  vectorized/sharded tiers: per-node state vectors declared via
  :class:`StateSchema`, packed numpy payload arrays
  (:class:`~repro.congest.message.PayloadSchema`) keyed by dense CSR arc
  slot, rounds executed as segmented reductions over the slots of one
  :class:`~repro.graphs.sharding.Shard` (the whole graph on the in-process
  tiers).
* :mod:`~repro.congest.faults` — seeded fault injection for the ``async``
  tier: :class:`FaultSchedule` (node/edge crash+recover transitions as
  first-class scheduler events), the :class:`MassFailure` / :class:`Churn` /
  :class:`LinkFlap` scenario generators, and the :class:`FaultVerdict`
  reconvergence accounting attached to ``SimulationResult``.
* :class:`~repro.congest.node.NodeAlgorithm` — base class for per-node
  protocols.
* :mod:`~repro.congest.primitives` — message-level BFS tree construction,
  flooding broadcast (single-value and pipelined multi-chunk), convergecast
  and leader election.  These ground the primitive-level cost model used by
  the higher layers.
* :mod:`~repro.congest.bellman_ford` — the classical distributed Bellman-Ford
  SSSP algorithm (scalar protocol and vectorized kernel), used as the
  general-graph baseline the paper's distance labeling is compared against.
"""

from repro.congest.message import Message, PayloadSchema, payload_size_words
from repro.congest.node import NodeAlgorithm, NodeContext
from repro.congest.engine import (
    EngineFallbackWarning,
    RoundStats,
    ShardPool,
    SimulationTrace,
)
from repro.congest.kernels import (
    BFSTreeKernel,
    FloodingKernel,
    PackedInbox,
    PackedSends,
    RoundKernel,
    StateSchema,
    StateVector,
)
from repro.congest.network import CongestNetwork, SimulationResult
from repro.congest.transport import (
    SharedMemoryTransport,
    SocketTransport,
    Transport,
)
from repro.congest.faults import (
    Churn,
    FaultEvent,
    FaultModel,
    FaultSchedule,
    FaultVerdict,
    LinkFlap,
    MassFailure,
)
from repro.congest.scheduler import (
    DelayModel,
    EventRecord,
    PerArcDelay,
    SlowLinkDelay,
    UniformDelay,
    UnitDelay,
    run_async,
)
from repro.congest import primitives, bellman_ford

__all__ = [
    "Churn",
    "FaultEvent",
    "FaultModel",
    "FaultSchedule",
    "FaultVerdict",
    "LinkFlap",
    "MassFailure",
    "DelayModel",
    "EventRecord",
    "PerArcDelay",
    "SlowLinkDelay",
    "UniformDelay",
    "UnitDelay",
    "run_async",
    "Message",
    "PayloadSchema",
    "payload_size_words",
    "NodeAlgorithm",
    "NodeContext",
    "EngineFallbackWarning",
    "RoundStats",
    "ShardPool",
    "SimulationTrace",
    "BFSTreeKernel",
    "FloodingKernel",
    "PackedInbox",
    "PackedSends",
    "RoundKernel",
    "StateSchema",
    "StateVector",
    "CongestNetwork",
    "SimulationResult",
    "SharedMemoryTransport",
    "SocketTransport",
    "Transport",
    "primitives",
    "bellman_ford",
]
