"""Execution engines for the CONGEST simulator — five tiers × two shard
transports.

This module holds the synchronous execution cores behind
:meth:`CongestNetwork.run` (the asynchronous fifth tier lives in
:mod:`repro.congest.scheduler`; the sharded tier's two boundary-exchange
transports live in :mod:`repro.congest.transport`).  All five tiers execute
identical protocol semantics and are equivalence-tested against each other
on randomized graph families (``tests/test_engine_equivalence.py``,
``tests/test_socket_transport.py`` and ``tests/test_async_scheduler.py``):
identical round counts, outputs, message/word counts, per-edge-per-round
bandwidth and round traces on every seeded instance — for the sharded tier
at every shard count *under either transport*, and for the async tier under
the unit-delay model (with protocol outputs additionally schedule-invariant
under every seeded delay model).

1. ``engine="legacy"`` — the dict-based reference loop kept verbatim in
   :mod:`repro.congest.network`.  One inbox rebuild per round, no indexing;
   the ground truth the other tiers are certified against.

2. ``engine="fast"`` (default, :func:`run_fast`) — the indexed scalar path:

   * **Indexed node space** — nodes are the contiguous integers of the
     graph's CSR view (:meth:`Graph.to_indexed`), so per-round bookkeeping
     lives in flat lists instead of dicts keyed by arbitrary hashables.
   * **Preallocated, double-buffered inboxes** — two ``n``-slot inbox tables
     are swapped between rounds; only slots actually touched by a delivery
     are reset, so a quiet round costs O(active), not O(n).
   * **Active-node worklist** — each round processes only nodes that are
     still running or received a message.  Worklists are iterated in
     node-index order, which makes message delivery order (and therefore
     every protocol execution) bit-for-bit identical to the legacy loop.
   * **Per-outbox payload-size caching** — a node broadcasting one payload
     object to all neighbours pays ``payload_size_words`` once, not once per
     receiver.

3. ``engine="vectorized"`` (:func:`run_vectorized`) — the whole-round array
   path for protocols that also provide a
   :class:`~repro.congest.kernels.RoundKernel`: per-node state vectors, a
   round executed as segmented CSR reductions over packed numpy payload
   arrays (:class:`~repro.congest.message.PayloadSchema`), and O(1)
   ``payload_size_words`` per message.  No Python loop runs over nodes or
   messages inside a round.

4. ``engine="sharded"`` (:func:`run_sharded`) — the multiprocess tier:
   kernels whose state is declared via a
   :class:`~repro.congest.kernels.StateSchema` are partitioned by a
   :class:`~repro.graphs.sharding.ShardPlan` (contiguous node ranges, hence
   contiguous rows of every state vector and contiguous CSR arc-slot
   ranges).  One worker process per shard executes the kernel over its
   ranges in lockstep rounds; workers come from a persistent
   :class:`ShardPool` (parked between runs, reused across
   :meth:`CongestNetwork.run` calls) or an ephemeral per-run pool.  The
   boundary exchange itself is pluggable
   (``run(engine="sharded", transport=...)``): the default
   **shared-memory transport** described below, or the **socket transport**
   in which workers hold no shared memory at all and everything crosses
   localhost TCP (see *Pluggable shard transports*).

   **Memory model — state is owned by shards, not replicated.**  The
   ``multiprocessing.shared_memory`` arena of a run is laid out as one
   *segment group per shard*: the shard-local rows of every declared state
   vector, the shard's double-banked send mask/word slices, and its packed
   boundary payload arrays (one slot per *boundary* arc — an arc whose
   reverse arc another shard owns — per payload field, not one per arc).
   ``kernel.init(state, csr, shard)`` allocates and seeds only the calling
   shard's rows, so per-worker peak declared-state memory is
   O((n + m) / num_shards + boundary), and the whole-arena total is one
   instance, not (num_shards + 1) instances.  Per-tier peak declared-state
   memory for a kernel with S bytes of declared whole-graph state:

   ======================  =========================================
   tier                    peak declared state
   ======================  =========================================
   fast / legacy           n/a (per-node Python objects, O(n + m))
   vectorized              S (one in-process copy)
   sharded, per worker     S / num_shards + O(boundary) exchange
   sharded, whole arena    S + 2·(mask + words + packed boundary)
   ======================  =========================================

   **Packed boundary-exchange contract** (tables precomputed by
   :meth:`ShardPlan.exchange`): per round a worker *publishes* its send
   mask/word slices plus the payload values of its boundary slots — packed,
   O(boundary) words — into the round's arena bank, then *gathers* its
   inbox: interior slots from its private send buffers, foreign slots
   straight from the owning peer's packed array via per-pair
   (packed-position, inbox-slot) index maps.  The banks alternate per round
   (double buffering), so a round needs only **two barriers** (publish →
   verdict) instead of three: publishing round r+1 writes the opposite bank
   from the one peers still gather round r from.  The parent performs the
   bandwidth/ledger accounting from the shared mask+words segments between
   the barriers with the exact array expressions of the vectorized tier —
   which makes ``RoundStats``/``SimulationTrace``/ledger merging
   bit-for-bit by construction rather than by reduction.

   **Pluggable shard transports** (:mod:`repro.congest.transport`).  The
   worker loop and the parent accounting speak only the ``Transport`` API,
   so the exchange above has two interchangeable carriers:

   * ``transport="shm"`` (default) — the arena/double-banked exchange
     exactly as described: zero-copy, paced by the pool barrier.  Use it
     whenever all shards share a host — it is strictly faster.
   * ``transport="socket"`` — each worker keeps its state private and all
     cross-process traffic moves over localhost TCP as length-prefixed
     frames (``!I`` byte-count prefix): per worker one *control*
     connection to the parent (a pickled ``hello``/``ports`` handshake,
     then per round one pickled ``pub`` frame — sent-slot indices,
     per-message words, halted count/census — and a 1-byte ``R``/``S``
     verdict frame replacing the two barriers, plus a final ``fin`` frame
     shipping the declared state rows for the merge), and per
     :class:`PeerExchange` pair one raw peer connection carrying
     ``packbits(mask[src_local])`` followed by the masked payload values —
     O(boundary) bytes per round with no indices on the wire, because the
     sender's ``ShardPlan.peer_links`` table is parallel to the receiver's
     gather table.  Use it to measure boundary traffic as a *real* network
     cost (``shard_stats`` then reports ``wire_bytes_by_peer`` /
     ``wire_bytes_total``) or as the stepping stone to multi-host runs; a
     listener that cannot bind degrades to shared memory with one
     :class:`EngineFallbackWarning` naming both flavours.

   **ShardPool lifecycle**: ``ShardPool(num_shards=k)`` starts workers
   lazily on first use; between runs they park on their job pipe, and each
   run ships only a run header, split into a pickled-once common blob
   (transport descriptor + graph snapshot) and a tiny per-shard suffix
   (shard index + that shard's ``slice_for_shard`` view of the kernel, so
   per-worker header ingest is O(payload / num_shards)) — the graph
   snapshot is cached worker-side until it changes.  A run at a different
   shard count restarts the pool; a failed run (crash, timeout, oversized
   message) discards the worker generation and the next run restarts it
   transparently.  ``close()`` — directly, via the pool's or the owning
   :class:`CongestNetwork`'s context manager, or the interpreter-exit
   finalizer — shuts the (daemonic) workers down; the per-run arena is
   closed+unlinked in a ``finally`` block even when a worker is SIGKILLed
   mid-round, so no shared-memory name outlives a run.

5. ``engine="async"`` (:func:`~repro.congest.scheduler.run_async`) — the
   event-driven asynchronous tier: a discrete-event scheduler assigns every
   (arc, message) envelope an integer delivery time drawn from a pluggable,
   deterministic, seeded :class:`~repro.congest.scheduler.DelayModel`
   (unit, uniform-integer, per-arc fixed, adversarial slow-link), and an
   α-synchronizer adapter lets every round-based protocol run unmodified:
   each node advances through local pulses, entering round ``p + 1`` once
   every neighbour's pulse-``p`` envelope (protocol message or empty pulse
   marker) has arrived.

   **Two interchangeable event queues** (``run(engine="async",
   scheduler=...)``): the default ``scheduler="bucketed"`` is a calendar
   queue — events land in per-timestamp buckets, a whole pulse's batch is
   released with one dict pop instead of ``m`` sift-down heap operations,
   and the silent-node pulse range of each delivery batch is fused into a
   single ranged tick event rather than one heap entry per silent node.
   ``scheduler="heap"`` keeps the original binary-heap queue as the
   reference implementation.  The two are bit-for-bit interchangeable —
   results, ledger, round/event traces, ``virtual_time``, deterministic
   ``async_stats`` entries and fault semantics — cross-checked per delivery
   batch by the ``ScheduleFuzzer`` sweep and the fault-injection suite; the
   bucketed queue simply gets there faster (see *When each tier wins*).

   **Accounting contract**: only protocol messages are charged, so the
   message/word/bandwidth ledger equals the synchronous tiers under *every*
   delay model; under :class:`~repro.congest.scheduler.UnitDelay` the whole
   run — results, ledger, round trace — is bit-for-bit identical to the four
   tiers above and ``virtual_time == rounds``.  The result additionally
   carries ``virtual_time`` (event-queue time of the last executed pulse)
   and ``async_stats`` (events processed, per-arc in-flight high-water
   marks — > 1 on a link means messages pipelined across it — and
   ``events_per_sec``, the one wall-clock — hence non-deterministic —
   entry).  A :class:`SimulationTrace` built with ``record_events=True``
   captures one :class:`~repro.congest.scheduler.EventRecord` per
   send/delivery/node execution, identically under either scheduler.

   **When to use**: timing studies, not throughput — the tier simulates one
   envelope per arc per pulse (O(m) queue events per round, the
   synchronizer's control traffic), so it is slower than ``fast``.  Reach
   for it to measure
   how delay distributions stretch virtual completion time, where messages
   pile up on slow links, or to certify a protocol's schedule-invariance by
   fuzzing seeds (the ``ScheduleFuzzer`` harness in
   ``tests/test_async_scheduler.py``); keep the synchronous tiers for speed.

**Fault injection** (:mod:`repro.congest.faults`) is an async-tier
capability: crash/recovery timing is expressed in event-queue time, which
the lockstep synchronous tiers do not have — a mid-round edge crash has no
well-defined meaning when every message of the round commits atomically.
``run(..., fault_schedule=...)`` therefore requires ``engine="async"``; the
synchronous tiers reject the argument with a :class:`SimulationError`
rather than silently ignoring faults or falling back:

   ======================  ==============================================
   tier                    ``fault_schedule=`` support
   ======================  ==============================================
   legacy / fast           rejected (``SimulationError``)
   vectorized / sharded    rejected (``SimulationError``)
   async                   full: seeded node/edge crash + recovery
                           schedules, payload drops on dead links,
                           self-stabilizing restart via
                           ``on_link_recovery``, ``FaultVerdict`` on the
                           result
   ======================  ==============================================

   An async request that cannot be served (``supports_async = False``
   protocols) normally falls back to ``fast``; with a fault schedule the
   fallback is also an error, because no other tier can honour it.  A
   ``FaultSchedule()`` with no events keeps the async tier on its
   fault-free fast path — bit-for-bit the run without the argument.

**Compiled-op backends** (:mod:`repro._accel`): the three hottest inner
expressions — the segmented min+parent reduction of the vectorized
Bellman-Ford round, the reverse-arc delivery gather of
:func:`run_vectorized`, and the packed boundary-hit scatter of the sharded
exchange — are routed through a tiny op registry with two implementations:
``accel="python"`` (the numpy expressions previously inlined at the call
sites; always available) and ``accel="numba"`` (``@njit``-compiled twins;
served only when numba is importable).  ``run(..., accel=...)`` accepts
``"auto"`` (default: numba if importable, else silently python),
``"python"``, or ``"numba"`` — an explicit ``"numba"`` request without
numba installed falls back to python with exactly one
:class:`EngineFallbackWarning` per process naming both the requested and
the selected backend.  Both backends are bit-for-bit interchangeable
(results, ledger, traces); selection is process-global and sticky until the
next explicit request.

**Per-tier option support** — which ``run()`` knobs each tier honours
(``scheduler=`` with a non-async engine and ``fault_schedule=`` with a
synchronous engine are rejected with :class:`SimulationError`; ``accel=``
is accepted everywhere but only reaches compiled ops on the array tiers):

   ============  =====================  ==================  ==============
   tier          ``scheduler=``         ``accel=`` ops hit  ``transport=``
   ============  =====================  ==================  ==============
   legacy        rejected               none (dict loop)    n/a
   fast          rejected               none (scalar loop)  n/a
   vectorized    rejected               min+parent, gather  n/a
   sharded       rejected               boundary scatter    shm / socket
   async         bucketed (default)     none (event loop)   n/a
                 / heap (reference)
   ============  =====================  ==================  ==============

**When each tier wins** (crossover records in ``BENCH_engine.json``): the
``fast`` worklist tier is best for sparse rounds — on the deep-path
Bellman-Ford case (n=2000, ≈ 1 active node per round) it runs ~22× faster
than ``legacy`` and ~4.5× faster than ``vectorized``, whose fixed per-round
array overhead dominates when rounds are nearly empty.  Dense rounds invert
the picture: on complete-graph Bellman-Ford (K_400, ~288k messages in 3
rounds) the ``vectorized`` tier is ~18× faster than ``fast``, and a *warm*
pooled ``sharded`` run beats ``fast`` at every measured shard count (~7.6×
at 2 shards with a 50% boundary fraction on a single-core host, up from
3.6× before the pool/packed-exchange/shard-local-init rework; cold first
runs still pay worker startup and the graph ship).  On a one-core host the
sharded win comes from the kernelized per-round compute, not parallelism;
in-process ``vectorized`` still wins outright there, and the tier's target
regime remains per-round kernel work large enough to amortize two barriers
per round — now with the added property that the *instance itself* no
longer has to fit a single process's declared-state budget.  On the async
tier the bucketed calendar queue clears ≥ 2× the heap's events/s on the
deep-path case (~0.66M → ~1.5M events/s at bench scale, where silent-node
pulse ranges fuse into single ticks) and ~1.4× on the dense case (payload
deliveries dominate there); ``BENCH_engine.json`` records both schedulers
as tier pairs (``async_*_bucketed`` / ``async_*_heap``) at the same ``n``
as the synchronous tiers, and CI's bench smoke asserts the bucketed queue
never regresses below the heap.  To re-measure any of these crossovers
yourself, sweep the tiers through the resumable experiment-matrix runner
(``bin/repro-bench run -p bellman_ford -e fast -e vectorized -f dense``);
``docs/experiments.md`` has the matrix spec, the resume semantics, the
gate tolerances and a one-command recipe per ``BENCH_engine.json`` case.

All tiers account bandwidth *per edge per round*: message words are
accumulated into a dense ``edge id -> words`` array per delivery batch, so
``SimulationResult.max_words_per_edge_round`` genuinely reports the busiest
(edge, round) pair rather than the largest single message.  An optional
:class:`SimulationTrace` receives a :class:`RoundStats` record per round
(active nodes, delivered messages and words, busiest edge, halted count) for
benchmarks and scaling studies.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Mapping, Optional

from repro.congest.message import Message, payload_size_words
from repro.congest.node import NodeAlgorithm, NodeContext
from repro.errors import BandwidthExceededError, ConvergenceError, SimulationError

NodeId = Hashable

#: Parent -> worker commands in the sharded tier's control slot.
_CMD_RUN = 0
_CMD_STOP = 1

#: Default cap on worker processes when ``num_shards`` is not given.
_DEFAULT_SHARD_CAP = 8

#: Default per-phase barrier timeout of the sharded tier (seconds).  Each
#: round has two barriers and the timeout bounds ONE phase's work (a
#: single round's gather+compute+publish, or the parent's accounting), not
#: the whole run; raise it via ``run(..., barrier_timeout=...)`` for
#: instances whose individual rounds legitimately run longer.
DEFAULT_BARRIER_TIMEOUT = 120.0


class EngineFallbackWarning(UserWarning):
    """A requested engine tier was unavailable and the run fell back.

    Emitted exactly once per :meth:`CongestNetwork.run` call, naming the
    requested tier, the tier that actually ran, and the reason (no kernel,
    no numpy, no state schema, non-picklable delay model, ...).
    """


def fallback_message(requested: str, selected: str, reason: str) -> str:
    """The canonical :class:`EngineFallbackWarning` text.

    Every fallback warning goes through this helper so the message always
    names *both* the requested and the selected tier (regression-tested in
    ``tests/test_async_scheduler.py``), not just the reason.
    """
    return (
        f"engine='{requested}' unavailable ({reason}); "
        f"falling back to engine='{selected}'"
    )


def sharded_available() -> bool:
    """Return ``True`` when the sharded tier can run on this platform."""
    try:
        import numpy  # noqa: F401
        from multiprocessing import shared_memory, synchronize  # noqa: F401
    except ImportError:  # pragma: no cover - exercised on exotic platforms
        return False
    return True


def default_num_shards(num_nodes: int) -> int:
    """Default worker count: one per CPU, capped, never more than nodes."""
    import os

    cpus = os.cpu_count() or 1
    return max(1, min(cpus, _DEFAULT_SHARD_CAP, num_nodes))


@dataclass
class RoundStats:
    """Statistics of one synchronous round.

    Attributes
    ----------
    round_number:
        1-based index of the round (matching ``SimulationResult.rounds``).
    active_nodes:
        Number of nodes whose ``on_round`` was invoked this round.
    messages_delivered / words_delivered:
        Traffic delivered at the start of this round.
    max_edge_words:
        The busiest edge of this round: total words that crossed it (both
        directions summed).
    halted_nodes:
        Number of locally terminated nodes after this round.
    """

    round_number: int
    active_nodes: int
    messages_delivered: int
    words_delivered: int
    max_edge_words: int
    halted_nodes: int


class SimulationTrace:
    """Round-by-round statistics hook for a simulation.

    Pass an instance via ``CongestNetwork.run(..., trace=...)``; after the run
    it holds one :class:`RoundStats` per executed round.  An optional
    ``callback`` is invoked with each record as it is produced (useful for
    live progress reporting on long simulations).

    On the asynchronous tier a trace constructed with ``record_events=True``
    additionally captures one :class:`~repro.congest.scheduler.EventRecord`
    per message send/delivery and per node execution in ``events`` (virtual
    timestamps included); the per-round ``rounds`` records are unaffected, so
    cross-tier trace comparisons via :meth:`as_dicts` keep working.
    """

    def __init__(
        self,
        callback: Optional[Callable[[RoundStats], None]] = None,
        record_events: bool = False,
    ) -> None:
        self.rounds: List[RoundStats] = []
        self.callback = callback
        self.record_events = record_events
        self.events: List[Any] = []

    def record(self, stats: RoundStats) -> None:
        self.rounds.append(stats)
        if self.callback is not None:
            self.callback(stats)

    def record_event(self, event: Any) -> None:
        """Capture one scheduler event (async tier, ``record_events=True``)."""
        self.events.append(event)

    # -- convenience accessors ------------------------------------------- #
    def __len__(self) -> int:
        return len(self.rounds)

    def __iter__(self):
        return iter(self.rounds)

    def total_messages(self) -> int:
        return sum(r.messages_delivered for r in self.rounds)

    def total_words(self) -> int:
        return sum(r.words_delivered for r in self.rounds)

    def peak_edge_words(self) -> int:
        return max((r.max_edge_words for r in self.rounds), default=0)

    def peak_active_nodes(self) -> int:
        return max((r.active_nodes for r in self.rounds), default=0)

    def as_dicts(self) -> List[Dict[str, int]]:
        """Return the trace as plain dicts (for tables / JSON dumps)."""
        return [vars(r).copy() for r in self.rounds]


def run_fast(
    network,
    algorithm_factory: Callable[[NodeId], NodeAlgorithm],
    max_rounds: int = 10_000,
    local_inputs: Optional[Mapping[NodeId, Any]] = None,
    stop_when_quiet: bool = True,
    trace: Optional[SimulationTrace] = None,
):
    """Execute one protocol on ``network`` through the indexed fast path.

    Semantics are identical to the legacy loop in
    :meth:`CongestNetwork._run_legacy`; see :meth:`CongestNetwork.run` for the
    parameter documentation.  Returns a
    :class:`~repro.congest.network.SimulationResult`.
    """
    from repro.congest.network import SimulationResult

    idx = network.indexed
    n = idx.num_nodes
    node_ids = idx.node_ids
    neighbor_ids = idx.neighbor_ids
    out_maps = network._out_maps  # per node: original neighbour id -> (idx, edge id)
    budget = network.words_per_message
    strict = network.strict_bandwidth

    algos: List[NodeAlgorithm] = [None] * n  # type: ignore[list-item]
    ctxs: List[NodeContext] = [None] * n  # type: ignore[list-item]
    for i in range(n):
        u = node_ids[i]
        algo = algorithm_factory(u)
        if not isinstance(algo, NodeAlgorithm):
            raise SimulationError(
                f"algorithm_factory must return NodeAlgorithm instances, got {type(algo)!r}"
            )
        algos[i] = algo
        ctxs[i] = NodeContext(
            node=u,
            neighbors=neighbor_ids[i],
            n=n,
            round_number=0,
            local_edges=None if local_inputs is None else local_inputs.get(u),
        )

    # -- flat per-run state --------------------------------------------- #
    messages_sent = 0
    words_sent = 0
    max_edge_round_words = 0  # max over (edge, round) of summed words
    max_message_words = 0  # largest single message (legacy statistic)

    inboxes: List[List[Message]] = [[] for _ in range(n)]  # delivery buffer
    staging: List[List[Message]] = [[] for _ in range(n)]  # next-round buffer
    touched: List[int] = []  # receivers with a non-empty staging slot
    edge_words: List[int] = [0] * idx.num_edges
    touched_edges: List[int] = []
    pending_msgs = 0  # messages in the staging batch
    pending_words = 0

    _no_payload = object()  # sentinel: no payload sized yet in this outbox

    def collect(sender_idx: int, outbox: Mapping[NodeId, Any]) -> None:
        nonlocal messages_sent, words_sent, max_message_words, pending_msgs, pending_words
        omap = out_maps[sender_idx]
        sender_id = node_ids[sender_idx]
        # Broadcast-style outboxes ship one payload object to every
        # neighbour; size each distinct object once per outbox instead of
        # re-walking it per receiver (identity check — sizing is pure).
        sized_payload: Any = _no_payload
        sized_words = 0
        for receiver, payload in outbox.items():
            target = omap.get(receiver)
            if target is None:
                raise SimulationError(
                    f"node {sender_id!r} attempted to message non-neighbour {receiver!r}"
                )
            if payload is sized_payload:
                size = sized_words
            else:
                size = payload_size_words(payload)
                sized_payload = payload
                sized_words = size
            if size > budget and strict:
                raise BandwidthExceededError(
                    f"message from {sender_id!r} to {receiver!r} is {size} words "
                    f"(budget {budget})"
                )
            j, eid = target
            messages_sent += 1
            words_sent += size
            pending_msgs += 1
            pending_words += size
            if size > max_message_words:
                max_message_words = size
            if not edge_words[eid]:
                touched_edges.append(eid)
            edge_words[eid] += size
            slot = staging[j]
            if not slot:
                touched.append(j)
            slot.append(Message(sender_id, receiver, payload))

    # Round 0: initialization messages.
    halted_count = 0
    for i in range(n):
        outbox = algos[i].initialize(ctxs[i])
        if outbox:
            collect(i, outbox)
        if algos[i].halted:
            halted_count += 1

    active: List[int] = [i for i in range(n) if not algos[i].halted]
    event_flags: List[bool] = [a.event_driven for a in algos]
    all_event = all(event_flags)
    scheduled = bytearray(n)  # per-round dedup marks for worklist building

    rounds = 0
    while rounds < max_rounds:
        if halted_count == n and not touched:
            break
        if stop_when_quiet and not touched and rounds > 0:
            break
        rounds += 1

        # Seal the staged batch: it is delivered at the start of this round.
        inboxes, staging = staging, inboxes
        delivered = touched
        touched = []
        batch_msgs, pending_msgs = pending_msgs, 0
        batch_words, pending_words = pending_words, 0
        batch_edge_max = 0
        for eid in touched_edges:
            w = edge_words[eid]
            if w > batch_edge_max:
                batch_edge_max = w
            edge_words[eid] = 0
        touched_edges.clear()
        if batch_edge_max > max_edge_round_words:
            max_edge_round_words = batch_edge_max

        # Build the worklist: nodes that must be invoked this round, in node
        # order (matching the legacy loop): every running non-event-driven
        # node, plus every node (running or halted) that received mail.
        if all_event:
            worklist = sorted(delivered)
        else:
            worklist = [i for i in active if not event_flags[i]]
            for i in worklist:
                scheduled[i] = 1
            extra = [r for r in delivered if not scheduled[r]]
            if extra:
                worklist = sorted(worklist + extra)
            for i in worklist:
                scheduled[i] = 0

        for i in worklist:
            algo = algos[i]
            was_halted = algo.halted
            ctx = ctxs[i]
            ctx.round_number = rounds
            outbox = algo.on_round(ctx, inboxes[i])
            if outbox:
                collect(i, outbox)
            if algo.halted and not was_halted:
                halted_count += 1

        # Reset only the touched delivery slots (fresh lists: a protocol may
        # legitimately keep a reference to the inbox it was handed).
        for r in delivered:
            inboxes[r] = []
        if halted_count:
            active = [i for i in active if not algos[i].halted]

        if trace is not None:
            trace.record(
                RoundStats(
                    round_number=rounds,
                    active_nodes=len(worklist),
                    messages_delivered=batch_msgs,
                    words_delivered=batch_words,
                    max_edge_words=batch_edge_max,
                    halted_nodes=halted_count,
                )
            )
    else:
        raise ConvergenceError(f"simulation did not terminate within {max_rounds} rounds")

    outputs = {node_ids[i]: algos[i].output for i in range(n)}
    return SimulationResult(
        rounds=rounds,
        outputs=outputs,
        messages_sent=messages_sent,
        words_sent=words_sent,
        max_words_per_edge_round=max_edge_round_words,
        halted=halted_count == n,
        max_message_words=max_message_words,
        engine="fast",
        trace=trace,
    )


def run_vectorized(
    network,
    kernel,
    max_rounds: int = 10_000,
    stop_when_quiet: bool = True,
    trace: Optional[SimulationTrace] = None,
):
    """Execute a :class:`~repro.congest.kernels.RoundKernel` on ``network``.

    The whole-round array tier: one :meth:`RoundKernel.round` call per round,
    operating on packed numpy payload arrays keyed by dense CSR arc slot.
    The loop structure (round counting, quiescence, halting) mirrors
    :func:`run_fast` statement for statement so all tiers agree on every
    :class:`~repro.congest.network.SimulationResult` field.  The kernel is
    invoked with the degenerate whole-graph shard — in-process vectorized
    execution is literally the one-shard special case of :func:`run_sharded`.
    """
    import numpy as np

    from repro.congest.kernels import PackedInbox, invoke_init
    from repro.congest.network import SimulationResult
    from repro.graphs.sharding import Shard

    csr = network.indexed.to_arrays()
    n = csr.num_nodes
    budget = network.words_per_message
    strict = network.strict_bandwidth
    schema = kernel.schema
    field_dtypes = dict(schema.fields)
    shard = Shard.full(csr)

    messages_sent = 0
    words_sent = 0
    max_edge_round_words = 0
    max_message_words = 0

    # Staged batch: arc positions sent on, their value arrays, and the
    # batch statistics sealed at account time (mirroring ``collect``).
    pending_arcs = None
    pending_values: Dict[str, Any] = {}
    pending_msgs = 0
    pending_words = 0
    pending_edge_max = 0

    def account(sends) -> None:
        """Validate and account one round's sends (the collect() analogue)."""
        nonlocal messages_sent, words_sent, max_message_words
        nonlocal pending_arcs, pending_values, pending_msgs, pending_words, pending_edge_max
        pending_arcs = None
        pending_values = {}
        pending_msgs = 0
        pending_words = 0
        pending_edge_max = 0
        if sends is None:
            return
        sent = np.flatnonzero(sends.mask)
        count = int(sent.shape[0])
        if count == 0:
            return
        if sends.words is None:
            batch_max_msg = schema.size_words
            batch_words = schema.size_words * count
            edge_totals = np.bincount(csr.arc_edge_ids[sent]) * schema.size_words
        else:
            w = sends.words[sent]
            batch_max_msg = int(w.max())
            batch_words = int(w.sum())
            edge_totals = np.bincount(csr.arc_edge_ids[sent], weights=w)
        if batch_max_msg > budget and strict:
            raise BandwidthExceededError(
                f"packed message of schema {schema!r} is {batch_max_msg} words "
                f"(budget {budget})"
            )
        messages_sent += count
        words_sent += batch_words
        if batch_max_msg > max_message_words:
            max_message_words = batch_max_msg
        pending_arcs = sent
        pending_values = {f: sends.values[f] for f in field_dtypes}
        pending_msgs = count
        pending_words = batch_words
        pending_edge_max = int(edge_totals.max())

    state: Dict[str, Any] = {}
    account(invoke_init(kernel, state, csr, shard))

    halted_vec = state.get("halted")  # kernel-owned boolean vector (optional)
    halted_count = int(halted_vec.sum()) if halted_vec is not None else 0

    from repro import _accel

    deliver_order = _accel.op("deliver_order")  # numpy or numba backend

    empty_arcs = np.empty(0, dtype=np.int64)
    empty_values = {f: np.empty(0, dtype=d) for f, d in field_dtypes.items()}

    rounds = 0
    while rounds < max_rounds:
        has_pending = pending_arcs is not None
        if halted_count == n and not has_pending:
            break
        if stop_when_quiet and not has_pending and rounds > 0:
            break
        rounds += 1

        # Seal and deliver the staged batch: the message sent on arc p lands
        # in the receiver-side slot rev[p]; sorting the slots yields
        # receiver-grouped (CSR segment) order for the kernel's reductions.
        batch_msgs, batch_words, batch_edge_max = pending_msgs, pending_words, pending_edge_max
        if batch_edge_max > max_edge_round_words:
            max_edge_round_words = batch_edge_max
        if has_pending:
            arcs, senders, perm = deliver_order(csr.rev, csr.indices, pending_arcs)
            values = {f: pending_values[f][perm] for f in field_dtypes}
        else:
            arcs, senders, values = empty_arcs, empty_arcs, empty_values
        inbox = PackedInbox(arcs, values)

        if trace is not None:
            # Same census as the fast worklist: every running node for
            # non-event-driven kernels, plus every receiver.
            _, receivers = inbox.segment_starts(csr)
            if kernel.event_driven:
                active_nodes = int(receivers.shape[0])
            elif halted_vec is not None:
                active_nodes = (n - halted_count) + int(halted_vec[receivers].sum())
            else:
                active_nodes = n

        account(kernel.round(state, inbox, senders, csr, shard))
        halted_vec = state.get("halted")
        halted_count = int(halted_vec.sum()) if halted_vec is not None else 0

        if trace is not None:
            trace.record(
                RoundStats(
                    round_number=rounds,
                    active_nodes=active_nodes,
                    messages_delivered=batch_msgs,
                    words_delivered=batch_words,
                    max_edge_words=batch_edge_max,
                    halted_nodes=halted_count,
                )
            )
    else:
        raise ConvergenceError(f"simulation did not terminate within {max_rounds} rounds")

    return SimulationResult(
        rounds=rounds,
        outputs=kernel.outputs(state, csr),
        messages_sent=messages_sent,
        words_sent=words_sent,
        max_words_per_edge_round=max_edge_round_words,
        halted=halted_count == n,
        max_message_words=max_message_words,
        engine="vectorized",
        trace=trace,
    )


# --------------------------------------------------------------------------- #
# Sharded tier: shared-memory arena + lockstep worker processes
# --------------------------------------------------------------------------- #

def _arena_layout(specs):
    """Lay out named arrays in one shared-memory block (64-byte aligned).

    Returns ``(layout, total_bytes)`` where ``layout`` maps each name to
    ``(offset, shape, dtype_str)`` — plain picklable data that workers use to
    rebuild their views.
    """
    import numpy as np

    layout = {}
    offset = 0
    for name, shape, dtype in specs:
        dt = np.dtype(dtype)
        size = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        layout[name] = (offset, tuple(int(x) for x in shape), dt.str)
        offset += (size + 63) & ~63
    # Pad so even zero-size views at the tail have a valid offset.
    return layout, offset + 64


def _arena_views(buf, layout):
    """Materialize the numpy views of an arena layout over ``buf``."""
    import numpy as np

    return {
        name: np.ndarray(shape, dtype=np.dtype(ds), buffer=buf, offset=off)
        for name, (off, shape, ds) in layout.items()
    }


def _attach_arena(name):
    """Attach a worker to the parent's shared-memory block by name.

    Works under both ``fork`` and ``spawn``: workers inherit the parent's
    resource-tracker channel, so their attach-time registration is an
    idempotent set-add and the parent's ``unlink`` retires the name exactly
    once (also when a worker is killed mid-run — the tracker process is
    shared, so no per-worker leak record survives).
    """
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


def _sharded_specs(plan, schema, state_schema, csr):
    """Build the per-shard arena segment specs of one run.

    The arena is laid out as one *segment group per shard*: the shard's
    double-banked send mask/word slices, its double-banked packed boundary
    value arrays (one slot per boundary arc, per payload field), and the
    shard-local rows of every declared state vector.  Returns ``(specs,
    state_bytes, exchange_bytes)`` where the byte lists (one entry per
    shard) let callers assert that declared state is genuinely shard-local.
    """
    import numpy as np

    specs = [("ctrl", (4,), "i8")]
    state_bytes = []
    exchange_bytes = []
    for shard in plan:
        s = shard.index
        boundary = int(plan.boundary_out(s).shape[0])
        xb = 0
        for bank in (0, 1):
            specs.append((f"mask:{s}:{bank}", (shard.num_arcs,), "?"))
            specs.append((f"words:{s}:{bank}", (shard.num_arcs,), "i8"))
            xb += shard.num_arcs * 9
            for fname, dtype in schema.fields:
                specs.append((f"bvalue:{s}:{fname}:{bank}", (boundary,), dtype))
                xb += boundary * np.dtype(dtype).itemsize
        sb = 0
        for vec in state_schema:
            specs.append((f"state:{s}:{vec.name}", vec.local_shape(shard), vec.dtype))
            sb += vec.local_nbytes(shard)
        state_bytes.append(sb)
        exchange_bytes.append(xb)
    return specs, state_bytes, exchange_bytes


def _mp_context():
    """The multiprocessing context of the sharded tier.

    Prefer fork on Linux: workers inherit the parent's numpy import and the
    pool's synchronization primitives for free.  Elsewhere keep the platform
    default (macOS documents fork as unsafe — Accelerate/Objective-C state
    does not survive it); the spawn path works too, it just re-imports.
    """
    import multiprocessing as mp
    import sys

    if sys.platform == "linux" and "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return mp.get_context()


def _close_pool_workers(worker_box):
    """Best-effort worker shutdown shared by close() and the exit finalizer."""
    for _proc, conn in worker_box:
        try:
            conn.send(None)
        except (OSError, ValueError, BrokenPipeError):
            pass
    for proc, _conn in worker_box:
        proc.join(timeout=2)
    for proc, conn in worker_box:
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=2)
        try:
            conn.close()
        except OSError:
            pass
    del worker_box[:]


class ShardPool:
    """A persistent pool of shard worker processes, reusable across runs.

    Creating worker processes and re-running a kernel's whole-graph setup
    used to be paid on *every* ``run(engine="sharded")`` call.  A pool
    amortizes it: workers are started once (lazily, on first use), park on
    their job pipe between runs, and each subsequent run only ships a run
    header: a pickled-once common blob (transport descriptor + graph
    snapshot) plus a tiny per-shard kernel-slice suffix — the graph snapshot
    itself is shipped once and cached worker-side until it changes.  Workers
    are transport-agnostic: shared-memory and socket runs can alternate on
    the same pool.

    Usage::

        with ShardPool(num_shards=4) as pool:
            net.run(factory, engine="sharded", kernel=k, shard_pool=pool)
            net.run(factory, engine="sharded", kernel=k, shard_pool=pool)

    or attach it to the network (``CongestNetwork(graph, shard_pool=pool)``)
    and let the network's context manager close it.  Results are bit-for-bit
    identical to fresh-pool and single-process runs (pool-reuse tests in
    ``tests/test_sharding.py``).

    Lifecycle rules:

    * ``ensure(k)`` starts (or restarts) exactly ``k`` workers; a run with a
      different shard count restarts the pool, so reuse pays off for
      repeated runs at one count (the common benchmark/serving shape).
    * a failed run (worker crash, timeout, oversized message) breaks the
      shared barrier; the pool discards its workers and transparently
      restarts them on the next run.
    * ``close()`` (or the context manager, or interpreter exit via a
      ``weakref.finalize`` hook) shuts the workers down; workers are daemon
      processes, so even a hard parent exit cannot leak them.
    """

    def __init__(self, num_shards: Optional[int] = None,
                 barrier_timeout: Optional[float] = None) -> None:
        self.num_shards = num_shards
        self.barrier_timeout = (
            DEFAULT_BARRIER_TIMEOUT if barrier_timeout is None else barrier_timeout
        )
        self._workers: List[Any] = []  # mutated in place; shared with finalizer
        self._barrier = None
        self._errors = None
        self._closed = False
        self._busy = False  # a pool serves one sharded run at a time
        self._cached_graph = None  # (key, indexed) the current workers hold
        self._finalizer = None
        #: Total worker processes ever started / runs dispatched (telemetry;
        #: the pool-reuse tests assert workers_started stays flat across
        #: same-size runs).
        self.workers_started = 0
        self.runs_dispatched = 0

    # -- lifecycle ------------------------------------------------------- #
    @property
    def num_workers(self) -> int:
        return len(self._workers)

    def worker_pids(self) -> List[int]:
        """The PIDs of the live worker processes (empty before first use)."""
        return [proc.pid for proc, _conn in self._workers]

    def ensure(self, num_workers: int) -> None:
        """Start (or restart) the pool so it holds ``num_workers`` workers.

        A no-op when the pool already has exactly that many live workers and
        an intact barrier — the reuse fast path.
        """
        import weakref

        if self._closed:
            raise SimulationError("shard pool is closed")
        if self._busy:
            raise SimulationError(
                "shard pool is already executing a run; a ShardPool serves "
                "one sharded run at a time"
            )
        if (
            len(self._workers) == num_workers
            and self._barrier is not None
            and not self._barrier.broken
            and all(proc.is_alive() for proc, _conn in self._workers)
        ):
            return
        self.discard()
        ctx = _mp_context()
        # Start the shared-memory resource tracker *before* forking: workers
        # must inherit the parent's tracker channel, otherwise each worker's
        # arena attach would spawn a private tracker that reports the (by
        # then unlinked) arena as leaked at worker exit.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker API unavailable
            pass
        self._barrier = ctx.Barrier(num_workers + 1)
        self._errors = ctx.Queue()
        for _ in range(num_workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_pool_worker,
                args=(child_conn, self._barrier, self._errors),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._workers.append((proc, parent_conn))
        self.workers_started += num_workers
        if self._finalizer is None or not self._finalizer.alive:
            self._finalizer = weakref.finalize(
                self, _close_pool_workers, self._workers
            )

    def discard(self) -> None:
        """Terminate the workers; the next run restarts them on demand."""
        for proc, conn in self._workers:
            try:
                conn.close()
            except OSError:
                pass
            if proc.is_alive():
                proc.terminate()
        for proc, _conn in self._workers:
            proc.join(timeout=5)
        del self._workers[:]
        self._barrier = None
        self._errors = None
        self._busy = False
        self._cached_graph = None

    def close(self) -> None:
        """Shut the pool down for good (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._finalizer is not None:
            self._finalizer.detach()
        _close_pool_workers(self._workers)
        self._barrier = None
        self._errors = None
        self._cached_graph = None

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"workers={len(self._workers)}"
        return f"ShardPool({state}, runs={self.runs_dispatched})"


def _pool_worker(conn, barrier, errors):
    """Worker main loop: park on the job pipe, execute one run per job.

    Between runs the worker blocks on ``conn.recv()`` — the parked state of
    the persistent pool.  A job is ``(common_bytes, suffix_bytes)``: the
    common blob is pickled *once* per run and shared by all workers (the
    transport descriptor, the graph cache key, the graph snapshot — shipped
    as ``None`` when the worker already holds it from a previous job — the
    cut points and the timeout), while the tiny per-shard suffix carries
    only the shard index and that shard's slice of the kernel
    (:meth:`RoundKernel.slice_for_shard`).  The worker-side graph cache —
    the CSR arrays, their reverse-arc table, the :class:`ShardPlan` and its
    packed exchange tables — is rebuilt only when the graph or the cut
    points change.  Any failure aborts the shared barrier (waking the
    parent and, on the shared-memory transport, the sibling workers) and
    ends this worker; a torn-down transport connection ends the worker
    silently — the parent already knows.  The pool restarts workers on the
    next run.
    """
    import pickle

    from repro.congest.transport import TransportBrokenError

    cache: Dict[Any, Any] = {}
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError):
            break
        if job is None:
            break
        common, suffix = job
        shard_index = None
        try:
            (descriptor, graph_key, indexed, node_starts, timeout,
             want_census) = pickle.loads(common)
            shard_index, kernel = pickle.loads(suffix)
            if indexed is not None:
                cache.clear()
                cache[graph_key] = {"indexed": indexed}
            entry = cache[graph_key]
            plan = entry.get("plan")
            if plan is None:
                from repro.graphs.sharding import ShardPlan

                plan = ShardPlan(entry["indexed"].to_arrays(), node_starts)
                entry["plan"] = plan
            _shard_worker_run(
                descriptor, plan, kernel, shard_index, barrier, timeout,
                want_census,
            )
        except threading.BrokenBarrierError:
            break  # parent or a sibling failed; the pool will restart us
        except TransportBrokenError:
            break  # the parent (or a dead sibling) tore the wire down; it
            # detects the failure through its own end — no barrier abort
        except BaseException:  # noqa: BLE001 - forward any failure to the parent
            import traceback

            try:
                errors.put((shard_index, traceback.format_exc()))
            except Exception:
                pass
            try:
                barrier.abort()
            except Exception:
                pass
            break
    try:
        conn.close()
    except Exception:
        pass


def _shard_worker_run(descriptor, plan, kernel, shard_index, barrier, timeout,
                      want_census):
    """One shard's lockstep execution of a single run (inside a pool worker).

    Round phases, whatever the transport:

    * **publish** — run ``kernel.round`` over the shard's local state rows
      and hand the send mask/word slices plus the *packed boundary* payload
      values to the transport session (arena bank write, or pub/peer
      frames);
    * **verdict** — the parent accounts the published round and answers
      RUN/STOP (control slot + barrier, or a 1-byte verdict frame);
    * **gather** — read the shard's inbox through the plan's precomputed
      exchange tables: interior slots from the private kernel buffers,
      foreign slots from the transport (peers' packed boundary arrays, or
      one peer frame per connection).

    The loop itself is transport-agnostic: ``descriptor`` is the picklable
    worker-side factory shipped in the run header by the parent session
    (see :mod:`repro.congest.transport`), and the session it connects
    encapsulates arena banks or sockets entirely.

    State is **shard-local**: ``kernel.init(state, csr, shard)`` allocates
    only this shard's rows, which the shared-memory session copies once
    into the shard's arena segment and rebinds so every subsequent kernel
    write lands in shared memory (the socket session keeps them private and
    ships them once at STOP).  Peak declared-state memory per worker is
    O((n + m) / num_shards + boundary), not O(n + m).
    """
    session = descriptor.connect(
        plan, shard_index, kernel, barrier, timeout, want_census
    )
    try:
        csr = plan.csr
        shard = plan.shard(shard_index)
        state: Dict[str, Any] = {}
        sends = kernel.init(state, csr, shard)
        session.adopt_state(state)
        session.publish(sends, state)
        prev = sends
        while session.wait_verdict():
            inbox, senders = session.gather(prev)
            sends = kernel.round(state, inbox, senders, csr, shard)
            session.check_state(state)
            session.publish(sends, state)
            prev = sends
        session.finish(state)
    finally:
        session.close()


def run_sharded(
    network,
    kernel,
    num_shards: Optional[int] = None,
    max_rounds: int = 10_000,
    stop_when_quiet: bool = True,
    trace: Optional[SimulationTrace] = None,
    plan=None,
    barrier_timeout: Optional[float] = None,
    pool: Optional[ShardPool] = None,
    transport=None,
):
    """Execute a schema-declared kernel across shard worker processes.

    The multiprocess tier: the node space is partitioned by a
    :class:`~repro.graphs.sharding.ShardPlan` (``plan`` overrides
    ``num_shards``; the default is an arc-balanced plan over
    :func:`default_num_shards` workers), and one worker per shard runs
    :func:`_shard_worker_run`'s publish → verdict → gather lockstep loop
    over the boundary-exchange ``transport`` (``None``/``"shm"`` for the
    default shared-memory arena, ``"socket"`` for localhost TCP, or a
    :class:`~repro.congest.transport.Transport` instance — see that module
    for the wire format and the when-to-use guidance).  Workers come from
    ``pool`` (a :class:`ShardPool`, reused across runs — transports can be
    mixed freely on one pool) or from an ephemeral pool created and closed
    inside this call.  Jobs reach the parked workers over a pipe, so the
    kernel must be picklable (a module-level class — the same requirement
    spawn-based platforms always had).  The run header is split into a
    pickled-once common blob shared by all workers (transport descriptor +
    graph snapshot; only the snapshot is cached worker-side) and a tiny
    per-shard suffix carrying that shard's
    :meth:`~repro.congest.kernels.RoundKernel.slice_for_shard` view of the
    kernel — so keep constructor payloads small, slice them per shard, or
    trim parent-only attributes via ``__getstate__`` the way
    :class:`~repro.labeling.sssp.LabelBroadcastKernel` drops its labeling.

    A ``num_shards`` request exceeding the node count (or below 1) is
    clamped with a single :class:`EngineFallbackWarning` — a plan can never
    contain an empty shard.  A socket transport whose listener cannot bind
    degrades to shared memory, also with a single warning.

    The parent never touches kernel state: it performs the
    accounting/termination logic of :func:`run_vectorized` on the published
    batches between verdicts (identical expressions, so message/word/
    bandwidth totals, ``ConvergenceError``/``BandwidthExceededError``
    behaviour and the :class:`SimulationTrace` are bit-for-bit equal to the
    single-process tiers *under either transport*), then merges outputs
    from the collected state.  The returned result additionally carries
    ``shard_stats`` (per-shard declared state bytes, arena bytes, boundary
    words published, run-header bytes, and — on the socket transport —
    per-peer bytes on the wire).
    """
    import warnings

    from repro.congest.kernels import supports_shard_init
    from repro.congest.transport import resolve_transport
    from repro.graphs.sharding import ShardPlan

    transport = resolve_transport(transport)

    csr = network.indexed.to_arrays()
    n = csr.num_nodes
    state_schema = kernel.state_schema(csr)
    if state_schema is None:
        raise SimulationError(
            f"kernel {type(kernel).__name__} declares no StateSchema; it cannot run sharded"
        )
    if not supports_shard_init(kernel):
        raise SimulationError(
            f"kernel {type(kernel).__name__}.init is not shard-aware "
            "(expected init(state, csr, shard)); it cannot run sharded"
        )
    if plan is None:
        # ``pool.num_shards`` tracks the *last explicitly requested* size: an
        # explicit per-run num_shards updates it, while per-graph clamping
        # (below) never writes back — so one run on a tiny graph cannot
        # permanently shrink the pool's hint for later large-graph runs.
        if num_shards is not None and pool is not None:
            pool.num_shards = int(num_shards)
        if num_shards is None and pool is not None and pool.num_shards:
            num_shards = pool.num_shards
        requested = default_num_shards(n) if num_shards is None else int(num_shards)
        clamped = min(max(1, requested), n) if n else 1
        if clamped != requested:
            warnings.warn(
                f"engine='sharded': num_shards={requested} cannot be honoured "
                f"on {n} nodes (a shard must own at least one node); clamped "
                f"to {clamped}, still running engine='sharded'",
                EngineFallbackWarning,
                stacklevel=2,
            )
        plan = ShardPlan.balanced(csr, clamped)
    elif plan.csr is not csr:
        raise SimulationError("shard plan was built for a different CSR snapshot")

    if barrier_timeout is None:
        barrier_timeout = (
            pool.barrier_timeout if pool is not None else DEFAULT_BARRIER_TIMEOUT
        )
    own_pool = pool is None
    if own_pool:
        pool = ShardPool(barrier_timeout=barrier_timeout)
    try:
        return _run_sharded_on_pool(
            network, kernel, plan, state_schema, csr, max_rounds,
            stop_when_quiet, trace, barrier_timeout, pool, transport,
        )
    finally:
        if own_pool:
            pool.close()


def _run_sharded_on_pool(network, kernel, plan, state_schema, csr, max_rounds,
                         stop_when_quiet, trace, barrier_timeout, pool,
                         transport):
    """The parent side of one sharded run, on an ensured :class:`ShardPool`."""
    import pickle
    import queue as queue_mod
    import warnings

    import numpy as np

    from repro.congest.kernels import PackedInbox, invoke_init
    from repro.congest.network import SimulationResult
    from repro.congest.transport import (
        SharedMemoryTransport,
        TransportBrokenError,
        TransportSetupError,
    )
    from repro.graphs.sharding import Shard

    n = csr.num_nodes
    budget = network.words_per_message
    strict = network.strict_bandwidth
    schema = kernel.schema
    k = plan.num_shards
    node_starts = [int(x) for x in plan.node_starts]
    want_census = trace is not None

    pool.ensure(k)
    barrier = pool._barrier
    errors = pool._errors

    # Create the transport session before marking the pool busy: a setup
    # failure here (e.g. ENOSPC on /dev/shm, an unbindable socket listener)
    # must leave the pool reusable.  A socket transport that cannot set its
    # listener up degrades to shared memory with one EngineFallbackWarning —
    # the run still executes engine='sharded', just on the in-host flavour.
    try:
        session = transport.create_parent(
            plan, schema, state_schema, csr,
            timeout=barrier_timeout, want_census=want_census, barrier=barrier,
        )
    except TransportSetupError as exc:
        fallback = SharedMemoryTransport()
        warnings.warn(
            fallback_message(
                f"sharded[{transport.name}]", f"sharded[{fallback.name}]",
                str(exc),
            ),
            EngineFallbackWarning,
            stacklevel=3,
        )
        transport = fallback
        session = transport.create_parent(
            plan, schema, state_schema, csr,
            timeout=barrier_timeout, want_census=want_census, barrier=barrier,
        )
    pool._busy = True
    aborted = False
    batch = None
    try:
        # Dispatch the run header, split into the pickled-once common blob
        # and a tiny per-shard suffix (shard index + that shard's
        # slice_for_shard view of the kernel): the invariant part is
        # serialized once per run instead of once per worker, and each
        # worker ingests only its own slice of the kernel payload.  The
        # graph snapshot ships only when the workers do not already hold it
        # (worker-side cache keyed by the snapshot identity; the pool pins
        # the cached snapshot so the id cannot be recycled while it is the
        # cache key).
        graph_key = (id(network.indexed), tuple(node_starts))
        cached = pool._cached_graph
        send_graph = cached is None or cached[0] != graph_key
        common = pickle.dumps(
            (session.descriptor(), graph_key,
             network.indexed if send_graph else None,
             node_starts, barrier_timeout, want_census),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        suffixes = [
            pickle.dumps(
                (s, kernel.slice_for_shard(plan.shard(s), csr)),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            for s in range(k)
        ]
        for s, (_proc, conn) in enumerate(pool._workers):
            conn.send((common, suffixes[s]))
        pool._cached_graph = (graph_key, network.indexed)
        pool.runs_dispatched += 1
        session.begin()

        has_halted = any(v.name == "halted" for v in state_schema)
        # Reusable whole-graph halted buffer for the traced census (refilled
        # in place each round; never allocated per round).
        census_halted = (
            np.empty(n, dtype=bool)
            if trace is not None and has_halted
            else None
        )
        boundary_mask = plan.boundary_arc_mask

        messages_sent = 0
        words_sent = 0
        max_edge_round_words = 0
        max_message_words = 0
        pending_msgs = 0
        pending_words = 0
        pending_edge_max = 0
        has_pending = False
        boundary_words_published = 0
        boundary_messages_published = 0

        def account(batch):
            """Account one published batch (run_vectorized's expressions)."""
            nonlocal messages_sent, words_sent, max_message_words
            nonlocal pending_msgs, pending_words, pending_edge_max, has_pending
            nonlocal boundary_words_published, boundary_messages_published
            pending_msgs = 0
            pending_words = 0
            pending_edge_max = 0
            parts_idx = []
            parts_w = []
            for gidx, gw in batch.parts():
                parts_idx.append(gidx)
                parts_w.append(gw)
            has_pending = bool(parts_idx)
            if not parts_idx:
                return None
            sent = np.concatenate(parts_idx)
            w = np.concatenate(parts_w)
            count = int(sent.shape[0])
            batch_max_msg = int(w.max())
            batch_words = int(w.sum())
            edge_totals = np.bincount(csr.arc_edge_ids[sent], weights=w)
            if batch_max_msg > budget and strict:
                raise BandwidthExceededError(
                    f"packed message of schema {schema!r} is {batch_max_msg} words "
                    f"(budget {budget})"
                )
            crossing = boundary_mask[sent]
            boundary_messages_published += int(crossing.sum())
            boundary_words_published += int(w[crossing].sum())
            messages_sent += count
            words_sent += batch_words
            if batch_max_msg > max_message_words:
                max_message_words = batch_max_msg
            pending_msgs = count
            pending_words = batch_words
            pending_edge_max = int(edge_totals.max())
            return sent

        # Private init in the parent too, but on a degenerate *empty* shard:
        # kernels set init-time attributes (chunk tables, rank maps) that
        # ``outputs`` needs, while allocating zero state rows — the parent
        # never holds a whole-graph state copy; every declared vector of
        # this dict is replaced by the merged shard segments at the end.
        parent_state: Dict[str, Any] = {}
        invoke_init(kernel, parent_state, csr, Shard(0, 0, 0, 0, 0))

        batch = session.wait_published()  # workers published their init sends
        sent = account(batch)
        hc = batch.halted_count
        halted_count = hc if hc is not None else 0

        rounds = 0
        converged = True
        while rounds < max_rounds:
            if halted_count == n and not has_pending:
                break
            if stop_when_quiet and not has_pending and rounds > 0:
                break
            rounds += 1
            batch_msgs, batch_words, batch_edge_max = (
                pending_msgs, pending_words, pending_edge_max,
            )
            if batch_edge_max > max_edge_round_words:
                max_edge_round_words = batch_edge_max
            if trace is not None:
                # Same census as run_vectorized, on the pre-round halted
                # state (workers are blocked on the verdict, so the batch is
                # quiescent here).
                slots = np.sort(csr.rev[sent]) if sent is not None else sent
                if slots is None:
                    active_nodes = 0 if kernel.event_driven else (
                        n if not has_halted else n - halted_count
                    )
                else:
                    _, receivers = PackedInbox(slots, {}).segment_starts(csr)
                    if kernel.event_driven:
                        active_nodes = int(receivers.shape[0])
                    elif has_halted:
                        batch.fill_halted(census_halted)
                        active_nodes = (n - halted_count) + int(
                            census_halted[receivers].sum()
                        )
                    else:
                        active_nodes = n
            session.send_verdict(stop=False)  # workers gather+compute
            batch = session.wait_published()  # new sends published
            sent = account(batch)
            hc = batch.halted_count
            halted_count = hc if hc is not None else 0
            if trace is not None:
                trace.record(
                    RoundStats(
                        round_number=rounds,
                        active_nodes=active_nodes,
                        messages_delivered=batch_msgs,
                        words_delivered=batch_words,
                        max_edge_words=batch_edge_max,
                        halted_nodes=halted_count,
                    )
                )
        else:
            converged = False

        # Workers read STOP and park again (over sockets they first flush
        # their final state frames, which collect_states drains — so the
        # pool stays warm on either transport, also on ConvergenceError).
        session.send_verdict(stop=True)
        collected = session.collect_states()
        if not converged:
            raise ConvergenceError(
                f"simulation did not terminate within {max_rounds} rounds"
            )

        merged = dict(parent_state)
        merged.update(collected)
        shard_stats = {
            "num_shards": k,
            "plan": plan.describe(),
            "transport": transport.name,
            "declared_state_bytes": list(session.state_bytes),
            "exchange_bytes": list(session.exchange_bytes),
            "arena_bytes": int(session.arena_bytes),
            "boundary_messages_published": int(boundary_messages_published),
            "boundary_words_published": int(boundary_words_published),
            "run_header_bytes": {
                "common": len(common),
                "per_shard": [len(sfx) for sfx in suffixes],
            },
            "worker_pids": pool.worker_pids(),
            "pool_run_index": pool.runs_dispatched,
        }
        shard_stats.update(session.wire_stats())
        return SimulationResult(
            rounds=rounds,
            outputs=kernel.outputs(merged, csr),
            messages_sent=messages_sent,
            words_sent=words_sent,
            max_words_per_edge_round=max_edge_round_words,
            halted=halted_count == n,
            max_message_words=max_message_words,
            engine="sharded",
            trace=trace,
            shard_stats=shard_stats,
        )
    except (threading.BrokenBarrierError, TransportBrokenError) as exc:
        aborted = True
        detail = "worker process failed or timed out"
        try:
            shard_index, tb = errors.get(timeout=2.0)
            detail = f"shard {shard_index} worker failed:\n{tb}"
        except (queue_mod.Empty, OSError, ValueError):
            if isinstance(exc, TransportBrokenError):
                detail = f"worker process failed or timed out ({exc})"
        raise SimulationError(f"sharded execution aborted: {detail}") from None
    except ConvergenceError:
        # Raised after the clean STOP handshake: every worker already parked,
        # so the pool stays warm for the next run.
        raise
    except BaseException:
        # Includes KeyboardInterrupt/SystemExit: the workers are mid-run, so
        # the generation must be discarded — reusing its barrier would
        # desynchronize the next run's phases.
        aborted = True
        raise
    finally:
        if aborted:
            # Wake any worker still blocked on the transport (barrier abort
            # or connection teardown), then drop the whole worker
            # generation — the pool restarts lazily next run.
            session.abort()
            pool.discard()
        pool._busy = False
        batch = None  # noqa: F841 - drop live batch views before close
        session.close()
