"""Fast-path execution engine for the CONGEST simulator.

This module is the compiled core behind :meth:`CongestNetwork.run`.  It
executes the same synchronous-round semantics as the reference loop kept in
:mod:`repro.congest.network` (``engine="legacy"``) but is built for large
simulations:

* **Indexed node space** — nodes are the contiguous integers of the graph's
  CSR view (:meth:`Graph.to_indexed`), so all per-round bookkeeping lives in
  flat lists instead of dicts keyed by arbitrary hashables.
* **Preallocated, double-buffered inboxes** — two ``n``-slot inbox tables are
  swapped between rounds; only slots actually touched by a delivery are
  reset, so a quiet round costs O(active), not O(n).
* **Active-node worklist** — each round processes only nodes that are still
  running or received a message, instead of scanning every node.  Worklists
  are iterated in node-index order, which makes message delivery order (and
  therefore every protocol execution) bit-for-bit identical to the legacy
  loop.
* **Per-edge-per-round bandwidth accounting** — message words are accumulated
  into a dense ``edge id -> words`` array per delivery batch, so
  ``SimulationResult.max_words_per_edge_round`` genuinely reports the busiest
  (edge, round) pair rather than the largest single message.
* **Round tracing** — an optional :class:`SimulationTrace` receives a
  :class:`RoundStats` record per round (active nodes, delivered messages and
  words, busiest edge, halted count) for benchmarks and scaling studies.

The engine is deliberately equivalence-tested against the legacy loop on
randomized graph families (``tests/test_engine_equivalence.py``): identical
round counts, outputs, and word counts on every seeded instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Mapping, Optional

from repro.congest.message import Message, payload_size_words
from repro.congest.node import NodeAlgorithm, NodeContext
from repro.errors import BandwidthExceededError, ConvergenceError, SimulationError

NodeId = Hashable


@dataclass
class RoundStats:
    """Statistics of one synchronous round.

    Attributes
    ----------
    round_number:
        1-based index of the round (matching ``SimulationResult.rounds``).
    active_nodes:
        Number of nodes whose ``on_round`` was invoked this round.
    messages_delivered / words_delivered:
        Traffic delivered at the start of this round.
    max_edge_words:
        The busiest edge of this round: total words that crossed it (both
        directions summed).
    halted_nodes:
        Number of locally terminated nodes after this round.
    """

    round_number: int
    active_nodes: int
    messages_delivered: int
    words_delivered: int
    max_edge_words: int
    halted_nodes: int


class SimulationTrace:
    """Round-by-round statistics hook for a simulation.

    Pass an instance via ``CongestNetwork.run(..., trace=...)``; after the run
    it holds one :class:`RoundStats` per executed round.  An optional
    ``callback`` is invoked with each record as it is produced (useful for
    live progress reporting on long simulations).
    """

    def __init__(self, callback: Optional[Callable[[RoundStats], None]] = None) -> None:
        self.rounds: List[RoundStats] = []
        self.callback = callback

    def record(self, stats: RoundStats) -> None:
        self.rounds.append(stats)
        if self.callback is not None:
            self.callback(stats)

    # -- convenience accessors ------------------------------------------- #
    def __len__(self) -> int:
        return len(self.rounds)

    def __iter__(self):
        return iter(self.rounds)

    def total_messages(self) -> int:
        return sum(r.messages_delivered for r in self.rounds)

    def total_words(self) -> int:
        return sum(r.words_delivered for r in self.rounds)

    def peak_edge_words(self) -> int:
        return max((r.max_edge_words for r in self.rounds), default=0)

    def peak_active_nodes(self) -> int:
        return max((r.active_nodes for r in self.rounds), default=0)

    def as_dicts(self) -> List[Dict[str, int]]:
        """Return the trace as plain dicts (for tables / JSON dumps)."""
        return [vars(r).copy() for r in self.rounds]


def run_fast(
    network,
    algorithm_factory: Callable[[NodeId], NodeAlgorithm],
    max_rounds: int = 10_000,
    local_inputs: Optional[Mapping[NodeId, Any]] = None,
    stop_when_quiet: bool = True,
    trace: Optional[SimulationTrace] = None,
):
    """Execute one protocol on ``network`` through the indexed fast path.

    Semantics are identical to the legacy loop in
    :meth:`CongestNetwork._run_legacy`; see :meth:`CongestNetwork.run` for the
    parameter documentation.  Returns a
    :class:`~repro.congest.network.SimulationResult`.
    """
    from repro.congest.network import SimulationResult

    idx = network.indexed
    n = idx.num_nodes
    node_ids = idx.node_ids
    neighbor_ids = idx.neighbor_ids
    out_maps = network._out_maps  # per node: original neighbour id -> (idx, edge id)
    budget = network.words_per_message
    strict = network.strict_bandwidth

    algos: List[NodeAlgorithm] = [None] * n  # type: ignore[list-item]
    ctxs: List[NodeContext] = [None] * n  # type: ignore[list-item]
    for i in range(n):
        u = node_ids[i]
        algo = algorithm_factory(u)
        if not isinstance(algo, NodeAlgorithm):
            raise SimulationError(
                f"algorithm_factory must return NodeAlgorithm instances, got {type(algo)!r}"
            )
        algos[i] = algo
        ctxs[i] = NodeContext(
            node=u,
            neighbors=neighbor_ids[i],
            n=n,
            round_number=0,
            local_edges=None if local_inputs is None else local_inputs.get(u),
        )

    # -- flat per-run state --------------------------------------------- #
    messages_sent = 0
    words_sent = 0
    max_edge_round_words = 0  # max over (edge, round) of summed words
    max_message_words = 0  # largest single message (legacy statistic)

    inboxes: List[List[Message]] = [[] for _ in range(n)]  # delivery buffer
    staging: List[List[Message]] = [[] for _ in range(n)]  # next-round buffer
    touched: List[int] = []  # receivers with a non-empty staging slot
    edge_words: List[int] = [0] * idx.num_edges
    touched_edges: List[int] = []
    pending_msgs = 0  # messages in the staging batch
    pending_words = 0

    def collect(sender_idx: int, outbox: Mapping[NodeId, Any]) -> None:
        nonlocal messages_sent, words_sent, max_message_words, pending_msgs, pending_words
        omap = out_maps[sender_idx]
        sender_id = node_ids[sender_idx]
        for receiver, payload in outbox.items():
            target = omap.get(receiver)
            if target is None:
                raise SimulationError(
                    f"node {sender_id!r} attempted to message non-neighbour {receiver!r}"
                )
            size = payload_size_words(payload)
            if size > budget and strict:
                raise BandwidthExceededError(
                    f"message from {sender_id!r} to {receiver!r} is {size} words "
                    f"(budget {budget})"
                )
            j, eid = target
            messages_sent += 1
            words_sent += size
            pending_msgs += 1
            pending_words += size
            if size > max_message_words:
                max_message_words = size
            if not edge_words[eid]:
                touched_edges.append(eid)
            edge_words[eid] += size
            slot = staging[j]
            if not slot:
                touched.append(j)
            slot.append(Message(sender_id, receiver, payload))

    # Round 0: initialization messages.
    halted_count = 0
    for i in range(n):
        outbox = algos[i].initialize(ctxs[i])
        if outbox:
            collect(i, outbox)
        if algos[i].halted:
            halted_count += 1

    active: List[int] = [i for i in range(n) if not algos[i].halted]
    event_flags: List[bool] = [a.event_driven for a in algos]
    all_event = all(event_flags)
    scheduled = bytearray(n)  # per-round dedup marks for worklist building

    rounds = 0
    while rounds < max_rounds:
        if halted_count == n and not touched:
            break
        if stop_when_quiet and not touched and rounds > 0:
            break
        rounds += 1

        # Seal the staged batch: it is delivered at the start of this round.
        inboxes, staging = staging, inboxes
        delivered = touched
        touched = []
        batch_msgs, pending_msgs = pending_msgs, 0
        batch_words, pending_words = pending_words, 0
        batch_edge_max = 0
        for eid in touched_edges:
            w = edge_words[eid]
            if w > batch_edge_max:
                batch_edge_max = w
            edge_words[eid] = 0
        touched_edges.clear()
        if batch_edge_max > max_edge_round_words:
            max_edge_round_words = batch_edge_max

        # Build the worklist: nodes that must be invoked this round, in node
        # order (matching the legacy loop): every running non-event-driven
        # node, plus every node (running or halted) that received mail.
        if all_event:
            worklist = sorted(delivered)
        else:
            worklist = [i for i in active if not event_flags[i]]
            for i in worklist:
                scheduled[i] = 1
            extra = [r for r in delivered if not scheduled[r]]
            if extra:
                worklist = sorted(worklist + extra)
            for i in worklist:
                scheduled[i] = 0

        for i in worklist:
            algo = algos[i]
            was_halted = algo.halted
            ctx = ctxs[i]
            ctx.round_number = rounds
            outbox = algo.on_round(ctx, inboxes[i])
            if outbox:
                collect(i, outbox)
            if algo.halted and not was_halted:
                halted_count += 1

        # Reset only the touched delivery slots (fresh lists: a protocol may
        # legitimately keep a reference to the inbox it was handed).
        for r in delivered:
            inboxes[r] = []
        if halted_count:
            active = [i for i in active if not algos[i].halted]

        if trace is not None:
            trace.record(
                RoundStats(
                    round_number=rounds,
                    active_nodes=len(worklist),
                    messages_delivered=batch_msgs,
                    words_delivered=batch_words,
                    max_edge_words=batch_edge_max,
                    halted_nodes=halted_count,
                )
            )
    else:
        raise ConvergenceError(f"simulation did not terminate within {max_rounds} rounds")

    outputs = {node_ids[i]: algos[i].output for i in range(n)}
    return SimulationResult(
        rounds=rounds,
        outputs=outputs,
        messages_sent=messages_sent,
        words_sent=words_sent,
        max_words_per_edge_round=max_edge_round_words,
        halted=halted_count == n,
        max_message_words=max_message_words,
        engine="fast",
        trace=trace,
    )
