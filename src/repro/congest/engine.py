"""Execution engines for the CONGEST simulator — a four-tier architecture.

This module holds the execution cores behind :meth:`CongestNetwork.run`.
Four tiers execute identical synchronous-round semantics and are
equivalence-tested against each other on randomized graph families
(``tests/test_engine_equivalence.py``): identical round counts, outputs,
message/word counts, per-edge-per-round bandwidth and round traces on every
seeded instance — for the sharded tier, at every shard count.

1. ``engine="legacy"`` — the dict-based reference loop kept verbatim in
   :mod:`repro.congest.network`.  One inbox rebuild per round, no indexing;
   the ground truth the other tiers are certified against.

2. ``engine="fast"`` (default, :func:`run_fast`) — the indexed scalar path:

   * **Indexed node space** — nodes are the contiguous integers of the
     graph's CSR view (:meth:`Graph.to_indexed`), so per-round bookkeeping
     lives in flat lists instead of dicts keyed by arbitrary hashables.
   * **Preallocated, double-buffered inboxes** — two ``n``-slot inbox tables
     are swapped between rounds; only slots actually touched by a delivery
     are reset, so a quiet round costs O(active), not O(n).
   * **Active-node worklist** — each round processes only nodes that are
     still running or received a message.  Worklists are iterated in
     node-index order, which makes message delivery order (and therefore
     every protocol execution) bit-for-bit identical to the legacy loop.
   * **Per-outbox payload-size caching** — a node broadcasting one payload
     object to all neighbours pays ``payload_size_words`` once, not once per
     receiver.

3. ``engine="vectorized"`` (:func:`run_vectorized`) — the whole-round array
   path for protocols that also provide a
   :class:`~repro.congest.kernels.RoundKernel`: per-node state vectors, a
   round executed as segmented CSR reductions over packed numpy payload
   arrays (:class:`~repro.congest.message.PayloadSchema`), and O(1)
   ``payload_size_words`` per message.  No Python loop runs over nodes or
   messages inside a round.

4. ``engine="sharded"`` (:func:`run_sharded`) — the multiprocess tier:
   kernels whose state is declared via a
   :class:`~repro.congest.kernels.StateSchema` are partitioned by a
   :class:`~repro.graphs.sharding.ShardPlan` (contiguous node ranges, hence
   contiguous rows of every state vector and contiguous CSR arc-slot
   ranges).  Every declared state vector and the packed send mask/word
   arrays live in one ``multiprocessing.shared_memory`` arena; one worker
   process per shard executes the kernel over its ranges in lockstep rounds.

   The **boundary-exchange contract** (see :mod:`repro.graphs.sharding`):
   per round, a worker *publishes* only the payload values of its boundary
   arc slots (arcs whose reverse arc is owned by another shard) plus its
   send-mask/word slices, then *gathers* its inbox through the precomputed
   ``rev`` tables — interior slots from its private send buffers, boundary
   slots from the shared arena.  Three barriers order each round (publish →
   gather → compute), and the parent process performs the bandwidth/ledger
   accounting from the shared mask+words arrays between barriers, with the
   exact array expressions of the vectorized tier — which makes
   ``RoundStats``/``SimulationTrace``/ledger merging bit-for-bit by
   construction rather than by reduction.

**When each tier wins** (crossover records in ``BENCH_engine.json``): the
``fast`` worklist tier is best for sparse rounds — on the deep-path
Bellman-Ford case (n=2000, ≈ 1 active node per round) it runs ~22× faster
than ``legacy`` and ~4.5× faster than ``vectorized``, whose fixed per-round
array overhead dominates when rounds are nearly empty.  Dense rounds invert
the picture: on complete-graph Bellman-Ford (K_400, ~288k messages in 3
rounds) the ``vectorized`` tier is ~18× faster than ``fast``, and the
``sharded`` tier beats ``fast`` at every measured shard count (~3.6× at 2
shards with a 50% boundary fraction, ~1.7× at 4 shards at 75%) while paying
a per-run worker/arena startup cost plus 3 barriers per round.  At this
benchmark scale the per-round kernel work is small enough that in-process
``vectorized`` still wins outright and adding shards only adds
synchronization; the sharded tier is the *compute* scale-out path —
per-round kernel work large enough to amortize the barriers — not a
shortcut on small dense instances (at trivial scale, e.g. the 60-node dense
smoke case, its startup cost loses to ``fast`` as well).  Note that today
every worker seeds its shard by running the deterministic full-graph
``init`` privately, so peak *memory* still scales with the whole instance
(times the worker count); shard-local init/placement is the ROADMAP item
that turns this tier into a memory scale-out as well.

All tiers account bandwidth *per edge per round*: message words are
accumulated into a dense ``edge id -> words`` array per delivery batch, so
``SimulationResult.max_words_per_edge_round`` genuinely reports the busiest
(edge, round) pair rather than the largest single message.  An optional
:class:`SimulationTrace` receives a :class:`RoundStats` record per round
(active nodes, delivered messages and words, busiest edge, halted count) for
benchmarks and scaling studies.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Mapping, Optional

from repro.congest.message import Message, payload_size_words
from repro.congest.node import NodeAlgorithm, NodeContext
from repro.errors import BandwidthExceededError, ConvergenceError, SimulationError

NodeId = Hashable

#: Parent -> worker commands in the sharded tier's control slot.
_CMD_RUN = 0
_CMD_STOP = 1

#: Default cap on worker processes when ``num_shards`` is not given.
_DEFAULT_SHARD_CAP = 8

#: Default per-phase barrier timeout of the sharded tier (seconds).  Each
#: round has three barriers and the timeout bounds ONE phase's work (a
#: single round's compute, gather or accounting), not the whole run; raise
#: it via ``run(..., barrier_timeout=...)`` for instances whose individual
#: rounds legitimately run longer.
DEFAULT_BARRIER_TIMEOUT = 120.0


class EngineFallbackWarning(UserWarning):
    """A requested engine tier was unavailable and the run fell back.

    Emitted exactly once per :meth:`CongestNetwork.run` call, naming the
    requested tier, the tier that actually ran, and the reason (no kernel,
    no numpy, no state schema, ...).
    """


def sharded_available() -> bool:
    """Return ``True`` when the sharded tier can run on this platform."""
    try:
        import numpy  # noqa: F401
        from multiprocessing import shared_memory, synchronize  # noqa: F401
    except ImportError:  # pragma: no cover - exercised on exotic platforms
        return False
    return True


def default_num_shards(num_nodes: int) -> int:
    """Default worker count: one per CPU, capped, never more than nodes."""
    import os

    cpus = os.cpu_count() or 1
    return max(1, min(cpus, _DEFAULT_SHARD_CAP, num_nodes))


@dataclass
class RoundStats:
    """Statistics of one synchronous round.

    Attributes
    ----------
    round_number:
        1-based index of the round (matching ``SimulationResult.rounds``).
    active_nodes:
        Number of nodes whose ``on_round`` was invoked this round.
    messages_delivered / words_delivered:
        Traffic delivered at the start of this round.
    max_edge_words:
        The busiest edge of this round: total words that crossed it (both
        directions summed).
    halted_nodes:
        Number of locally terminated nodes after this round.
    """

    round_number: int
    active_nodes: int
    messages_delivered: int
    words_delivered: int
    max_edge_words: int
    halted_nodes: int


class SimulationTrace:
    """Round-by-round statistics hook for a simulation.

    Pass an instance via ``CongestNetwork.run(..., trace=...)``; after the run
    it holds one :class:`RoundStats` per executed round.  An optional
    ``callback`` is invoked with each record as it is produced (useful for
    live progress reporting on long simulations).
    """

    def __init__(self, callback: Optional[Callable[[RoundStats], None]] = None) -> None:
        self.rounds: List[RoundStats] = []
        self.callback = callback

    def record(self, stats: RoundStats) -> None:
        self.rounds.append(stats)
        if self.callback is not None:
            self.callback(stats)

    # -- convenience accessors ------------------------------------------- #
    def __len__(self) -> int:
        return len(self.rounds)

    def __iter__(self):
        return iter(self.rounds)

    def total_messages(self) -> int:
        return sum(r.messages_delivered for r in self.rounds)

    def total_words(self) -> int:
        return sum(r.words_delivered for r in self.rounds)

    def peak_edge_words(self) -> int:
        return max((r.max_edge_words for r in self.rounds), default=0)

    def peak_active_nodes(self) -> int:
        return max((r.active_nodes for r in self.rounds), default=0)

    def as_dicts(self) -> List[Dict[str, int]]:
        """Return the trace as plain dicts (for tables / JSON dumps)."""
        return [vars(r).copy() for r in self.rounds]


def run_fast(
    network,
    algorithm_factory: Callable[[NodeId], NodeAlgorithm],
    max_rounds: int = 10_000,
    local_inputs: Optional[Mapping[NodeId, Any]] = None,
    stop_when_quiet: bool = True,
    trace: Optional[SimulationTrace] = None,
):
    """Execute one protocol on ``network`` through the indexed fast path.

    Semantics are identical to the legacy loop in
    :meth:`CongestNetwork._run_legacy`; see :meth:`CongestNetwork.run` for the
    parameter documentation.  Returns a
    :class:`~repro.congest.network.SimulationResult`.
    """
    from repro.congest.network import SimulationResult

    idx = network.indexed
    n = idx.num_nodes
    node_ids = idx.node_ids
    neighbor_ids = idx.neighbor_ids
    out_maps = network._out_maps  # per node: original neighbour id -> (idx, edge id)
    budget = network.words_per_message
    strict = network.strict_bandwidth

    algos: List[NodeAlgorithm] = [None] * n  # type: ignore[list-item]
    ctxs: List[NodeContext] = [None] * n  # type: ignore[list-item]
    for i in range(n):
        u = node_ids[i]
        algo = algorithm_factory(u)
        if not isinstance(algo, NodeAlgorithm):
            raise SimulationError(
                f"algorithm_factory must return NodeAlgorithm instances, got {type(algo)!r}"
            )
        algos[i] = algo
        ctxs[i] = NodeContext(
            node=u,
            neighbors=neighbor_ids[i],
            n=n,
            round_number=0,
            local_edges=None if local_inputs is None else local_inputs.get(u),
        )

    # -- flat per-run state --------------------------------------------- #
    messages_sent = 0
    words_sent = 0
    max_edge_round_words = 0  # max over (edge, round) of summed words
    max_message_words = 0  # largest single message (legacy statistic)

    inboxes: List[List[Message]] = [[] for _ in range(n)]  # delivery buffer
    staging: List[List[Message]] = [[] for _ in range(n)]  # next-round buffer
    touched: List[int] = []  # receivers with a non-empty staging slot
    edge_words: List[int] = [0] * idx.num_edges
    touched_edges: List[int] = []
    pending_msgs = 0  # messages in the staging batch
    pending_words = 0

    _no_payload = object()  # sentinel: no payload sized yet in this outbox

    def collect(sender_idx: int, outbox: Mapping[NodeId, Any]) -> None:
        nonlocal messages_sent, words_sent, max_message_words, pending_msgs, pending_words
        omap = out_maps[sender_idx]
        sender_id = node_ids[sender_idx]
        # Broadcast-style outboxes ship one payload object to every
        # neighbour; size each distinct object once per outbox instead of
        # re-walking it per receiver (identity check — sizing is pure).
        sized_payload: Any = _no_payload
        sized_words = 0
        for receiver, payload in outbox.items():
            target = omap.get(receiver)
            if target is None:
                raise SimulationError(
                    f"node {sender_id!r} attempted to message non-neighbour {receiver!r}"
                )
            if payload is sized_payload:
                size = sized_words
            else:
                size = payload_size_words(payload)
                sized_payload = payload
                sized_words = size
            if size > budget and strict:
                raise BandwidthExceededError(
                    f"message from {sender_id!r} to {receiver!r} is {size} words "
                    f"(budget {budget})"
                )
            j, eid = target
            messages_sent += 1
            words_sent += size
            pending_msgs += 1
            pending_words += size
            if size > max_message_words:
                max_message_words = size
            if not edge_words[eid]:
                touched_edges.append(eid)
            edge_words[eid] += size
            slot = staging[j]
            if not slot:
                touched.append(j)
            slot.append(Message(sender_id, receiver, payload))

    # Round 0: initialization messages.
    halted_count = 0
    for i in range(n):
        outbox = algos[i].initialize(ctxs[i])
        if outbox:
            collect(i, outbox)
        if algos[i].halted:
            halted_count += 1

    active: List[int] = [i for i in range(n) if not algos[i].halted]
    event_flags: List[bool] = [a.event_driven for a in algos]
    all_event = all(event_flags)
    scheduled = bytearray(n)  # per-round dedup marks for worklist building

    rounds = 0
    while rounds < max_rounds:
        if halted_count == n and not touched:
            break
        if stop_when_quiet and not touched and rounds > 0:
            break
        rounds += 1

        # Seal the staged batch: it is delivered at the start of this round.
        inboxes, staging = staging, inboxes
        delivered = touched
        touched = []
        batch_msgs, pending_msgs = pending_msgs, 0
        batch_words, pending_words = pending_words, 0
        batch_edge_max = 0
        for eid in touched_edges:
            w = edge_words[eid]
            if w > batch_edge_max:
                batch_edge_max = w
            edge_words[eid] = 0
        touched_edges.clear()
        if batch_edge_max > max_edge_round_words:
            max_edge_round_words = batch_edge_max

        # Build the worklist: nodes that must be invoked this round, in node
        # order (matching the legacy loop): every running non-event-driven
        # node, plus every node (running or halted) that received mail.
        if all_event:
            worklist = sorted(delivered)
        else:
            worklist = [i for i in active if not event_flags[i]]
            for i in worklist:
                scheduled[i] = 1
            extra = [r for r in delivered if not scheduled[r]]
            if extra:
                worklist = sorted(worklist + extra)
            for i in worklist:
                scheduled[i] = 0

        for i in worklist:
            algo = algos[i]
            was_halted = algo.halted
            ctx = ctxs[i]
            ctx.round_number = rounds
            outbox = algo.on_round(ctx, inboxes[i])
            if outbox:
                collect(i, outbox)
            if algo.halted and not was_halted:
                halted_count += 1

        # Reset only the touched delivery slots (fresh lists: a protocol may
        # legitimately keep a reference to the inbox it was handed).
        for r in delivered:
            inboxes[r] = []
        if halted_count:
            active = [i for i in active if not algos[i].halted]

        if trace is not None:
            trace.record(
                RoundStats(
                    round_number=rounds,
                    active_nodes=len(worklist),
                    messages_delivered=batch_msgs,
                    words_delivered=batch_words,
                    max_edge_words=batch_edge_max,
                    halted_nodes=halted_count,
                )
            )
    else:
        raise ConvergenceError(f"simulation did not terminate within {max_rounds} rounds")

    outputs = {node_ids[i]: algos[i].output for i in range(n)}
    return SimulationResult(
        rounds=rounds,
        outputs=outputs,
        messages_sent=messages_sent,
        words_sent=words_sent,
        max_words_per_edge_round=max_edge_round_words,
        halted=halted_count == n,
        max_message_words=max_message_words,
        engine="fast",
        trace=trace,
    )


def run_vectorized(
    network,
    kernel,
    max_rounds: int = 10_000,
    stop_when_quiet: bool = True,
    trace: Optional[SimulationTrace] = None,
):
    """Execute a :class:`~repro.congest.kernels.RoundKernel` on ``network``.

    The whole-round array tier: one :meth:`RoundKernel.round` call per round,
    operating on packed numpy payload arrays keyed by dense CSR arc slot.
    The loop structure (round counting, quiescence, halting) mirrors
    :func:`run_fast` statement for statement so all tiers agree on every
    :class:`~repro.congest.network.SimulationResult` field.  The kernel is
    invoked with the degenerate whole-graph shard — in-process vectorized
    execution is literally the one-shard special case of :func:`run_sharded`.
    """
    import numpy as np

    from repro.congest.kernels import PackedInbox
    from repro.congest.network import SimulationResult
    from repro.graphs.sharding import Shard

    csr = network.indexed.to_arrays()
    n = csr.num_nodes
    budget = network.words_per_message
    strict = network.strict_bandwidth
    schema = kernel.schema
    field_dtypes = dict(schema.fields)
    shard = Shard.full(csr)

    messages_sent = 0
    words_sent = 0
    max_edge_round_words = 0
    max_message_words = 0

    # Staged batch: arc positions sent on, their value arrays, and the
    # batch statistics sealed at account time (mirroring ``collect``).
    pending_arcs = None
    pending_values: Dict[str, Any] = {}
    pending_msgs = 0
    pending_words = 0
    pending_edge_max = 0

    def account(sends) -> None:
        """Validate and account one round's sends (the collect() analogue)."""
        nonlocal messages_sent, words_sent, max_message_words
        nonlocal pending_arcs, pending_values, pending_msgs, pending_words, pending_edge_max
        pending_arcs = None
        pending_values = {}
        pending_msgs = 0
        pending_words = 0
        pending_edge_max = 0
        if sends is None:
            return
        sent = np.flatnonzero(sends.mask)
        count = int(sent.shape[0])
        if count == 0:
            return
        if sends.words is None:
            batch_max_msg = schema.size_words
            batch_words = schema.size_words * count
            edge_totals = np.bincount(csr.arc_edge_ids[sent]) * schema.size_words
        else:
            w = sends.words[sent]
            batch_max_msg = int(w.max())
            batch_words = int(w.sum())
            edge_totals = np.bincount(csr.arc_edge_ids[sent], weights=w)
        if batch_max_msg > budget and strict:
            raise BandwidthExceededError(
                f"packed message of schema {schema!r} is {batch_max_msg} words "
                f"(budget {budget})"
            )
        messages_sent += count
        words_sent += batch_words
        if batch_max_msg > max_message_words:
            max_message_words = batch_max_msg
        pending_arcs = sent
        pending_values = {f: sends.values[f] for f in field_dtypes}
        pending_msgs = count
        pending_words = batch_words
        pending_edge_max = int(edge_totals.max())

    state: Dict[str, Any] = {}
    account(kernel.init(state, csr))

    halted_vec = state.get("halted")  # kernel-owned boolean vector (optional)
    halted_count = int(halted_vec.sum()) if halted_vec is not None else 0

    empty_arcs = np.empty(0, dtype=np.int64)
    empty_values = {f: np.empty(0, dtype=d) for f, d in field_dtypes.items()}

    rounds = 0
    while rounds < max_rounds:
        has_pending = pending_arcs is not None
        if halted_count == n and not has_pending:
            break
        if stop_when_quiet and not has_pending and rounds > 0:
            break
        rounds += 1

        # Seal and deliver the staged batch: the message sent on arc p lands
        # in the receiver-side slot rev[p]; sorting the slots yields
        # receiver-grouped (CSR segment) order for the kernel's reductions.
        batch_msgs, batch_words, batch_edge_max = pending_msgs, pending_words, pending_edge_max
        if batch_edge_max > max_edge_round_words:
            max_edge_round_words = batch_edge_max
        if has_pending:
            slots = csr.rev[pending_arcs]
            order = np.argsort(slots)
            arcs = slots[order]
            senders = csr.indices[arcs]
            values = {f: pending_values[f][pending_arcs[order]] for f in field_dtypes}
        else:
            arcs, senders, values = empty_arcs, empty_arcs, empty_values
        inbox = PackedInbox(arcs, values)

        if trace is not None:
            # Same census as the fast worklist: every running node for
            # non-event-driven kernels, plus every receiver.
            _, receivers = inbox.segment_starts(csr)
            if kernel.event_driven:
                active_nodes = int(receivers.shape[0])
            elif halted_vec is not None:
                active_nodes = (n - halted_count) + int(halted_vec[receivers].sum())
            else:
                active_nodes = n

        account(kernel.round(state, inbox, senders, csr, shard))
        halted_vec = state.get("halted")
        halted_count = int(halted_vec.sum()) if halted_vec is not None else 0

        if trace is not None:
            trace.record(
                RoundStats(
                    round_number=rounds,
                    active_nodes=active_nodes,
                    messages_delivered=batch_msgs,
                    words_delivered=batch_words,
                    max_edge_words=batch_edge_max,
                    halted_nodes=halted_count,
                )
            )
    else:
        raise ConvergenceError(f"simulation did not terminate within {max_rounds} rounds")

    return SimulationResult(
        rounds=rounds,
        outputs=kernel.outputs(state, csr),
        messages_sent=messages_sent,
        words_sent=words_sent,
        max_words_per_edge_round=max_edge_round_words,
        halted=halted_count == n,
        max_message_words=max_message_words,
        engine="vectorized",
        trace=trace,
    )


# --------------------------------------------------------------------------- #
# Sharded tier: shared-memory arena + lockstep worker processes
# --------------------------------------------------------------------------- #

def _arena_layout(specs):
    """Lay out named arrays in one shared-memory block (64-byte aligned).

    Returns ``(layout, total_bytes)`` where ``layout`` maps each name to
    ``(offset, shape, dtype_str)`` — plain picklable data that workers use to
    rebuild their views.
    """
    import numpy as np

    layout = {}
    offset = 0
    for name, shape, dtype in specs:
        dt = np.dtype(dtype)
        size = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        layout[name] = (offset, tuple(int(x) for x in shape), dt.str)
        offset += (size + 63) & ~63
    # Pad so even zero-size views at the tail have a valid offset.
    return layout, offset + 64


def _arena_views(buf, layout):
    """Materialize the numpy views of an arena layout over ``buf``."""
    import numpy as np

    return {
        name: np.ndarray(shape, dtype=np.dtype(ds), buffer=buf, offset=off)
        for name, (off, shape, ds) in layout.items()
    }


def _attach_arena(name):
    """Attach a worker to the parent's shared-memory block by name.

    Works under both ``fork`` and ``spawn``: workers inherit the parent's
    resource-tracker channel, so their attach-time registration is an
    idempotent set-add and the parent's ``unlink`` retires the name exactly
    once.
    """
    from multiprocessing import shared_memory

    return shared_memory.SharedMemory(name=name)


def _shard_worker(shm_name, layout, indexed, kernel, node_starts, shard_index,
                  barrier, errors, timeout):
    """One shard's lockstep execution loop (runs in a worker process).

    Round phases (each separated by a barrier shared with the parent):

    * **publish** — write this shard's send-mask/word slices and the payload
      values of its *boundary* arc slots into the arena;
    * **gather** — read the shard's inbox through the precomputed ``rev``
      tables (interior slots from the private kernel buffers, boundary slots
      from the arena);
    * **compute** — invoke ``kernel.round`` over the shard's state rows.

    The parent performs accounting/termination between ``publish`` and the
    next ``gather``, so workers never race it on the arena.
    """
    import numpy as np

    from repro.congest.kernels import PackedInbox
    from repro.graphs.sharding import ShardPlan

    shm = None
    try:
        shm = _attach_arena(shm_name)
        views = _arena_views(shm.buf, layout)
        csr = indexed.to_arrays()
        plan = ShardPlan(csr, node_starts)
        shard = plan.shard(shard_index)
        schema = kernel.state_schema(csr)
        field_names = [name for name, _ in kernel.schema.fields]
        size_words = kernel.schema.size_words

        ctrl = views["ctrl"]
        mask_v = views["mask"]
        words_v = views["words"]
        value_v = {f: views["value:" + f] for f in field_names}
        alo, ahi = shard.arc_lo, shard.arc_hi
        boundary = plan.boundary_out(shard_index)
        sources = plan.inbox_sources(shard_index)
        interior = plan.interior_inbox(shard_index)

        # init is deterministic: run it privately for the whole graph, then
        # adopt the shared rows — copy this shard's slice of every declared
        # vector into the arena and rebind so kernel writes land there.
        state: Dict[str, Any] = {}
        sends = kernel.init(state, csr)
        for vec in schema:
            shared_arr = views["state:" + vec.name]
            rows = vec.row_slice(shard)
            shared_arr[rows] = state[vec.name][rows]
            state[vec.name] = shared_arr

        def publish(s) -> None:
            if s is None:
                mask_v[alo:ahi] = False
                return
            mask_v[alo:ahi] = s.mask[alo:ahi]
            for f in field_names:
                value_v[f][boundary] = s.values[f][boundary]
            if s.words is None:
                words_v[alo:ahi] = size_words
            else:
                words_v[alo:ahi] = s.words[alo:ahi]

        publish(sends)
        prev = sends
        barrier.wait(timeout)  # init sends published
        while True:
            barrier.wait(timeout)  # parent wrote its verdict to ctrl
            if ctrl[0] == _CMD_STOP:
                break
            hit = np.flatnonzero(mask_v[sources])
            arcs = alo + hit
            senders = csr.indices[arcs]
            src = sources[hit]
            inter = interior[hit]
            outer = ~inter
            src_inter = src[inter]
            src_outer = src[outer]
            values = {}
            for f in field_names:
                # Fill each half once: boundary slots from the arena,
                # interior slots from this worker's private buffers (only
                # boundary payloads are ever published, and an interior hit
                # implies this worker's own prev sends exist).
                vals = np.empty(hit.shape[0], dtype=value_v[f].dtype)
                vals[outer] = value_v[f][src_outer]
                if prev is not None:
                    vals[inter] = prev.values[f][src_inter]
                values[f] = vals
            inbox = PackedInbox(arcs, values)
            barrier.wait(timeout)  # every shard gathered; buffers reusable
            sends = kernel.round(state, inbox, senders, csr, shard)
            for vec in schema:
                # Declared vectors must be mutated in place: a rebind would
                # silently detach this worker from the arena (the vectorized
                # tier re-reads the dict, so the bug would not show there).
                if state[vec.name] is not views["state:" + vec.name]:
                    raise SimulationError(
                        f"kernel rebound declared state vector {vec.name!r} "
                        "during round(); sharded kernels must write declared "
                        "state in place"
                    )
            publish(sends)
            prev = sends
            barrier.wait(timeout)  # sends published
    except threading.BrokenBarrierError:
        pass  # parent or a sibling failed; just exit
    except BaseException:  # noqa: BLE001 - forward any failure to the parent
        import traceback

        try:
            errors.put((shard_index, traceback.format_exc()))
        except Exception:
            pass
        barrier.abort()
    finally:
        if shm is not None:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - views still referenced
                pass


def run_sharded(
    network,
    kernel,
    num_shards: Optional[int] = None,
    max_rounds: int = 10_000,
    stop_when_quiet: bool = True,
    trace: Optional[SimulationTrace] = None,
    plan=None,
    barrier_timeout: Optional[float] = None,
):
    """Execute a schema-declared kernel across shard worker processes.

    The multiprocess tier: the node space is partitioned by a
    :class:`~repro.graphs.sharding.ShardPlan` (``plan`` overrides
    ``num_shards``; the default is an arc-balanced plan over
    :func:`default_num_shards` workers), every schema-declared state vector
    and the packed send mask/word arrays are placed in one
    ``multiprocessing.shared_memory`` arena, and one worker per shard runs
    :func:`_shard_worker`'s publish → gather → compute lockstep loop.

    The parent never touches kernel state: it performs the
    accounting/termination logic of :func:`run_vectorized` on the shared
    mask+words arrays between barriers (identical expressions, so message/
    word/bandwidth totals, ``ConvergenceError``/``BandwidthExceededError``
    behaviour and the :class:`SimulationTrace` are bit-for-bit equal to the
    single-process tiers), then merges outputs from the shared state.
    """
    import queue as queue_mod

    import multiprocessing as mp

    import numpy as np

    from multiprocessing import shared_memory

    from repro.congest.kernels import PackedInbox
    from repro.congest.network import SimulationResult
    from repro.graphs.sharding import ShardPlan

    if barrier_timeout is None:
        barrier_timeout = DEFAULT_BARRIER_TIMEOUT
    csr = network.indexed.to_arrays()
    n = csr.num_nodes
    state_schema = kernel.state_schema(csr)
    if state_schema is None:
        raise SimulationError(
            f"kernel {type(kernel).__name__} declares no StateSchema; it cannot run sharded"
        )
    if plan is None:
        shards = default_num_shards(n) if num_shards is None else int(num_shards)
        plan = ShardPlan.balanced(csr, shards)
    elif plan.csr is not csr:
        raise SimulationError("shard plan was built for a different CSR snapshot")

    budget = network.words_per_message
    strict = network.strict_bandwidth
    schema = kernel.schema
    field_names = [name for name, _ in schema.fields]

    specs = [
        ("ctrl", (4,), "i8"),
        ("mask", (csr.num_arcs,), "?"),
        ("words", (csr.num_arcs,), "i8"),
    ]
    for fname, dtype in schema.fields:
        specs.append(("value:" + fname, (csr.num_arcs,), dtype))
    for vec in state_schema:
        specs.append(("state:" + vec.name, vec.shape(csr), vec.dtype))
    layout, total = _arena_layout(specs)

    # Prefer fork on Linux: workers inherit the parent's CSR/numpy caches
    # for free.  Elsewhere keep the platform default (macOS documents fork
    # as unsafe — Accelerate/Objective-C state does not survive it); the
    # spawn path works too, it just re-imports and re-pickles the inputs.
    import sys

    if sys.platform == "linux" and "fork" in mp.get_all_start_methods():
        ctx = mp.get_context("fork")
    else:
        ctx = mp.get_context()
    shm = shared_memory.SharedMemory(create=True, size=total)
    barrier = ctx.Barrier(plan.num_shards + 1)
    errors = ctx.Queue()
    node_starts = [int(x) for x in plan.node_starts]
    workers = [
        ctx.Process(
            target=_shard_worker,
            args=(shm.name, layout, network.indexed, kernel, node_starts, s,
                  barrier, errors, barrier_timeout),
            daemon=True,
        )
        for s in range(plan.num_shards)
    ]

    views = _arena_views(shm.buf, layout)
    mask_v = views["mask"]
    words_v = views["words"]
    ctrl = views["ctrl"]
    halted_view = views.get("state:halted") if any(
        v.name == "halted" for v in state_schema
    ) else None

    messages_sent = 0
    words_sent = 0
    max_edge_round_words = 0
    max_message_words = 0
    pending_msgs = 0
    pending_words = 0
    pending_edge_max = 0
    has_pending = False

    def account():
        """Account the published batch (run_vectorized's expressions)."""
        nonlocal messages_sent, words_sent, max_message_words
        nonlocal pending_msgs, pending_words, pending_edge_max, has_pending
        pending_msgs = 0
        pending_words = 0
        pending_edge_max = 0
        sent = np.flatnonzero(mask_v)
        count = int(sent.shape[0])
        has_pending = count > 0
        if count == 0:
            return None
        w = words_v[sent]
        batch_max_msg = int(w.max())
        batch_words = int(w.sum())
        edge_totals = np.bincount(csr.arc_edge_ids[sent], weights=w)
        if batch_max_msg > budget and strict:
            raise BandwidthExceededError(
                f"packed message of schema {schema!r} is {batch_max_msg} words "
                f"(budget {budget})"
            )
        messages_sent += count
        words_sent += batch_words
        if batch_max_msg > max_message_words:
            max_message_words = batch_max_msg
        pending_msgs = count
        pending_words = batch_words
        pending_edge_max = int(edge_totals.max())
        return sent

    try:
        for w in workers:
            w.start()
        # Private init in the parent too: kernels set init-time attributes
        # (chunk tables, weight maps) that ``outputs`` needs; the declared
        # vectors of this dict are replaced by the shared ones at the end.
        parent_state: Dict[str, Any] = {}
        kernel.init(parent_state, csr)

        barrier.wait(barrier_timeout)  # workers published their init sends
        sent = account()
        halted_count = int(halted_view.sum()) if halted_view is not None else 0

        rounds = 0
        converged = True
        while rounds < max_rounds:
            if halted_count == n and not has_pending:
                break
            if stop_when_quiet and not has_pending and rounds > 0:
                break
            rounds += 1
            batch_msgs, batch_words, batch_edge_max = (
                pending_msgs, pending_words, pending_edge_max,
            )
            if batch_edge_max > max_edge_round_words:
                max_edge_round_words = batch_edge_max
            if trace is not None:
                # Same census as run_vectorized, on the pre-round halted
                # state (workers are blocked on the next barrier, so the
                # arena is quiescent here).
                slots = np.sort(csr.rev[sent]) if sent is not None else sent
                if slots is None:
                    active_nodes = 0 if kernel.event_driven else (
                        n if halted_view is None else n - halted_count
                    )
                else:
                    _, receivers = PackedInbox(slots, {}).segment_starts(csr)
                    if kernel.event_driven:
                        active_nodes = int(receivers.shape[0])
                    elif halted_view is not None:
                        active_nodes = (n - halted_count) + int(
                            halted_view[receivers].sum()
                        )
                    else:
                        active_nodes = n
            ctrl[0] = _CMD_RUN
            barrier.wait(barrier_timeout)  # release workers into gather
            barrier.wait(barrier_timeout)  # gather done; workers compute
            barrier.wait(barrier_timeout)  # new sends published
            sent = account()
            halted_count = int(halted_view.sum()) if halted_view is not None else 0
            if trace is not None:
                trace.record(
                    RoundStats(
                        round_number=rounds,
                        active_nodes=active_nodes,
                        messages_delivered=batch_msgs,
                        words_delivered=batch_words,
                        max_edge_words=batch_edge_max,
                        halted_nodes=halted_count,
                    )
                )
        else:
            converged = False

        ctrl[0] = _CMD_STOP
        barrier.wait(barrier_timeout)
        for w in workers:
            w.join(timeout=10)
        if not converged:
            raise ConvergenceError(
                f"simulation did not terminate within {max_rounds} rounds"
            )

        merged = dict(parent_state)
        for vec in state_schema:
            merged[vec.name] = np.array(views["state:" + vec.name], copy=True)
        return SimulationResult(
            rounds=rounds,
            outputs=kernel.outputs(merged, csr),
            messages_sent=messages_sent,
            words_sent=words_sent,
            max_words_per_edge_round=max_edge_round_words,
            halted=halted_count == n,
            max_message_words=max_message_words,
            engine="sharded",
            trace=trace,
        )
    except threading.BrokenBarrierError:
        detail = "worker process failed or timed out"
        try:
            shard_index, tb = errors.get(timeout=2.0)
            detail = f"shard {shard_index} worker failed:\n{tb}"
        except (queue_mod.Empty, OSError, ValueError):
            pass
        raise SimulationError(f"sharded execution aborted: {detail}") from None
    finally:
        try:
            barrier.abort()
        except Exception:
            pass
        for w in workers:
            if w.is_alive():
                w.terminate()
            w.join(timeout=5)
        # Drop our arena views before closing; if an in-flight exception's
        # traceback still pins one, unlink alone is enough (the mapping dies
        # with the last reference, the name is gone now).
        views = mask_v = words_v = ctrl = halted_view = None  # noqa: F841
        try:
            shm.close()
        except BufferError:
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double cleanup
            pass
