"""Execution engines for the CONGEST simulator — a three-tier architecture.

This module holds the execution cores behind :meth:`CongestNetwork.run`.
Three tiers execute identical synchronous-round semantics and are
equivalence-tested against each other on randomized graph families
(``tests/test_engine_equivalence.py``): identical round counts, outputs,
message/word counts and per-edge-per-round bandwidth on every seeded
instance.

1. ``engine="legacy"`` — the dict-based reference loop kept verbatim in
   :mod:`repro.congest.network`.  One inbox rebuild per round, no indexing;
   the ground truth the other tiers are certified against.

2. ``engine="fast"`` (default, :func:`run_fast`) — the indexed scalar path:

   * **Indexed node space** — nodes are the contiguous integers of the
     graph's CSR view (:meth:`Graph.to_indexed`), so per-round bookkeeping
     lives in flat lists instead of dicts keyed by arbitrary hashables.
   * **Preallocated, double-buffered inboxes** — two ``n``-slot inbox tables
     are swapped between rounds; only slots actually touched by a delivery
     are reset, so a quiet round costs O(active), not O(n).
   * **Active-node worklist** — each round processes only nodes that are
     still running or received a message.  Worklists are iterated in
     node-index order, which makes message delivery order (and therefore
     every protocol execution) bit-for-bit identical to the legacy loop.
   * **Per-outbox payload-size caching** — a node broadcasting one payload
     object to all neighbours pays ``payload_size_words`` once, not once per
     receiver.

3. ``engine="vectorized"`` (:func:`run_vectorized`) — the whole-round array
   path for protocols that also provide a
   :class:`~repro.congest.kernels.RoundKernel`: per-node state vectors, a
   round executed as segmented CSR reductions over packed numpy payload
   arrays (:class:`~repro.congest.message.PayloadSchema`), and O(1)
   ``payload_size_words`` per message.  No Python loop runs over nodes or
   messages inside a round.  Protocols without a kernel (or environments
   without numpy) gracefully fall back to ``fast``.

All tiers account bandwidth *per edge per round*: message words are
accumulated into a dense ``edge id -> words`` array per delivery batch, so
``SimulationResult.max_words_per_edge_round`` genuinely reports the busiest
(edge, round) pair rather than the largest single message.  An optional
:class:`SimulationTrace` receives a :class:`RoundStats` record per round
(active nodes, delivered messages and words, busiest edge, halted count) for
benchmarks and scaling studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Mapping, Optional

from repro.congest.message import Message, payload_size_words
from repro.congest.node import NodeAlgorithm, NodeContext
from repro.errors import BandwidthExceededError, ConvergenceError, SimulationError

NodeId = Hashable


@dataclass
class RoundStats:
    """Statistics of one synchronous round.

    Attributes
    ----------
    round_number:
        1-based index of the round (matching ``SimulationResult.rounds``).
    active_nodes:
        Number of nodes whose ``on_round`` was invoked this round.
    messages_delivered / words_delivered:
        Traffic delivered at the start of this round.
    max_edge_words:
        The busiest edge of this round: total words that crossed it (both
        directions summed).
    halted_nodes:
        Number of locally terminated nodes after this round.
    """

    round_number: int
    active_nodes: int
    messages_delivered: int
    words_delivered: int
    max_edge_words: int
    halted_nodes: int


class SimulationTrace:
    """Round-by-round statistics hook for a simulation.

    Pass an instance via ``CongestNetwork.run(..., trace=...)``; after the run
    it holds one :class:`RoundStats` per executed round.  An optional
    ``callback`` is invoked with each record as it is produced (useful for
    live progress reporting on long simulations).
    """

    def __init__(self, callback: Optional[Callable[[RoundStats], None]] = None) -> None:
        self.rounds: List[RoundStats] = []
        self.callback = callback

    def record(self, stats: RoundStats) -> None:
        self.rounds.append(stats)
        if self.callback is not None:
            self.callback(stats)

    # -- convenience accessors ------------------------------------------- #
    def __len__(self) -> int:
        return len(self.rounds)

    def __iter__(self):
        return iter(self.rounds)

    def total_messages(self) -> int:
        return sum(r.messages_delivered for r in self.rounds)

    def total_words(self) -> int:
        return sum(r.words_delivered for r in self.rounds)

    def peak_edge_words(self) -> int:
        return max((r.max_edge_words for r in self.rounds), default=0)

    def peak_active_nodes(self) -> int:
        return max((r.active_nodes for r in self.rounds), default=0)

    def as_dicts(self) -> List[Dict[str, int]]:
        """Return the trace as plain dicts (for tables / JSON dumps)."""
        return [vars(r).copy() for r in self.rounds]


def run_fast(
    network,
    algorithm_factory: Callable[[NodeId], NodeAlgorithm],
    max_rounds: int = 10_000,
    local_inputs: Optional[Mapping[NodeId, Any]] = None,
    stop_when_quiet: bool = True,
    trace: Optional[SimulationTrace] = None,
):
    """Execute one protocol on ``network`` through the indexed fast path.

    Semantics are identical to the legacy loop in
    :meth:`CongestNetwork._run_legacy`; see :meth:`CongestNetwork.run` for the
    parameter documentation.  Returns a
    :class:`~repro.congest.network.SimulationResult`.
    """
    from repro.congest.network import SimulationResult

    idx = network.indexed
    n = idx.num_nodes
    node_ids = idx.node_ids
    neighbor_ids = idx.neighbor_ids
    out_maps = network._out_maps  # per node: original neighbour id -> (idx, edge id)
    budget = network.words_per_message
    strict = network.strict_bandwidth

    algos: List[NodeAlgorithm] = [None] * n  # type: ignore[list-item]
    ctxs: List[NodeContext] = [None] * n  # type: ignore[list-item]
    for i in range(n):
        u = node_ids[i]
        algo = algorithm_factory(u)
        if not isinstance(algo, NodeAlgorithm):
            raise SimulationError(
                f"algorithm_factory must return NodeAlgorithm instances, got {type(algo)!r}"
            )
        algos[i] = algo
        ctxs[i] = NodeContext(
            node=u,
            neighbors=neighbor_ids[i],
            n=n,
            round_number=0,
            local_edges=None if local_inputs is None else local_inputs.get(u),
        )

    # -- flat per-run state --------------------------------------------- #
    messages_sent = 0
    words_sent = 0
    max_edge_round_words = 0  # max over (edge, round) of summed words
    max_message_words = 0  # largest single message (legacy statistic)

    inboxes: List[List[Message]] = [[] for _ in range(n)]  # delivery buffer
    staging: List[List[Message]] = [[] for _ in range(n)]  # next-round buffer
    touched: List[int] = []  # receivers with a non-empty staging slot
    edge_words: List[int] = [0] * idx.num_edges
    touched_edges: List[int] = []
    pending_msgs = 0  # messages in the staging batch
    pending_words = 0

    _no_payload = object()  # sentinel: no payload sized yet in this outbox

    def collect(sender_idx: int, outbox: Mapping[NodeId, Any]) -> None:
        nonlocal messages_sent, words_sent, max_message_words, pending_msgs, pending_words
        omap = out_maps[sender_idx]
        sender_id = node_ids[sender_idx]
        # Broadcast-style outboxes ship one payload object to every
        # neighbour; size each distinct object once per outbox instead of
        # re-walking it per receiver (identity check — sizing is pure).
        sized_payload: Any = _no_payload
        sized_words = 0
        for receiver, payload in outbox.items():
            target = omap.get(receiver)
            if target is None:
                raise SimulationError(
                    f"node {sender_id!r} attempted to message non-neighbour {receiver!r}"
                )
            if payload is sized_payload:
                size = sized_words
            else:
                size = payload_size_words(payload)
                sized_payload = payload
                sized_words = size
            if size > budget and strict:
                raise BandwidthExceededError(
                    f"message from {sender_id!r} to {receiver!r} is {size} words "
                    f"(budget {budget})"
                )
            j, eid = target
            messages_sent += 1
            words_sent += size
            pending_msgs += 1
            pending_words += size
            if size > max_message_words:
                max_message_words = size
            if not edge_words[eid]:
                touched_edges.append(eid)
            edge_words[eid] += size
            slot = staging[j]
            if not slot:
                touched.append(j)
            slot.append(Message(sender_id, receiver, payload))

    # Round 0: initialization messages.
    halted_count = 0
    for i in range(n):
        outbox = algos[i].initialize(ctxs[i])
        if outbox:
            collect(i, outbox)
        if algos[i].halted:
            halted_count += 1

    active: List[int] = [i for i in range(n) if not algos[i].halted]
    event_flags: List[bool] = [a.event_driven for a in algos]
    all_event = all(event_flags)
    scheduled = bytearray(n)  # per-round dedup marks for worklist building

    rounds = 0
    while rounds < max_rounds:
        if halted_count == n and not touched:
            break
        if stop_when_quiet and not touched and rounds > 0:
            break
        rounds += 1

        # Seal the staged batch: it is delivered at the start of this round.
        inboxes, staging = staging, inboxes
        delivered = touched
        touched = []
        batch_msgs, pending_msgs = pending_msgs, 0
        batch_words, pending_words = pending_words, 0
        batch_edge_max = 0
        for eid in touched_edges:
            w = edge_words[eid]
            if w > batch_edge_max:
                batch_edge_max = w
            edge_words[eid] = 0
        touched_edges.clear()
        if batch_edge_max > max_edge_round_words:
            max_edge_round_words = batch_edge_max

        # Build the worklist: nodes that must be invoked this round, in node
        # order (matching the legacy loop): every running non-event-driven
        # node, plus every node (running or halted) that received mail.
        if all_event:
            worklist = sorted(delivered)
        else:
            worklist = [i for i in active if not event_flags[i]]
            for i in worklist:
                scheduled[i] = 1
            extra = [r for r in delivered if not scheduled[r]]
            if extra:
                worklist = sorted(worklist + extra)
            for i in worklist:
                scheduled[i] = 0

        for i in worklist:
            algo = algos[i]
            was_halted = algo.halted
            ctx = ctxs[i]
            ctx.round_number = rounds
            outbox = algo.on_round(ctx, inboxes[i])
            if outbox:
                collect(i, outbox)
            if algo.halted and not was_halted:
                halted_count += 1

        # Reset only the touched delivery slots (fresh lists: a protocol may
        # legitimately keep a reference to the inbox it was handed).
        for r in delivered:
            inboxes[r] = []
        if halted_count:
            active = [i for i in active if not algos[i].halted]

        if trace is not None:
            trace.record(
                RoundStats(
                    round_number=rounds,
                    active_nodes=len(worklist),
                    messages_delivered=batch_msgs,
                    words_delivered=batch_words,
                    max_edge_words=batch_edge_max,
                    halted_nodes=halted_count,
                )
            )
    else:
        raise ConvergenceError(f"simulation did not terminate within {max_rounds} rounds")

    outputs = {node_ids[i]: algos[i].output for i in range(n)}
    return SimulationResult(
        rounds=rounds,
        outputs=outputs,
        messages_sent=messages_sent,
        words_sent=words_sent,
        max_words_per_edge_round=max_edge_round_words,
        halted=halted_count == n,
        max_message_words=max_message_words,
        engine="fast",
        trace=trace,
    )


def run_vectorized(
    network,
    kernel,
    max_rounds: int = 10_000,
    stop_when_quiet: bool = True,
    trace: Optional[SimulationTrace] = None,
):
    """Execute a :class:`~repro.congest.kernels.RoundKernel` on ``network``.

    The whole-round array tier: one :meth:`RoundKernel.round` call per round,
    operating on packed numpy payload arrays keyed by dense CSR arc slot.
    The loop structure (round counting, quiescence, halting) mirrors
    :func:`run_fast` statement for statement so the three tiers agree on
    every :class:`~repro.congest.network.SimulationResult` field.
    """
    import numpy as np

    from repro.congest.kernels import PackedInbox
    from repro.congest.network import SimulationResult

    csr = network.indexed.to_arrays()
    n = csr.num_nodes
    budget = network.words_per_message
    strict = network.strict_bandwidth
    schema = kernel.schema
    field_dtypes = dict(schema.fields)

    messages_sent = 0
    words_sent = 0
    max_edge_round_words = 0
    max_message_words = 0

    # Staged batch: arc positions sent on, their value arrays, and the
    # batch statistics sealed at account time (mirroring ``collect``).
    pending_arcs = None
    pending_values: Dict[str, Any] = {}
    pending_msgs = 0
    pending_words = 0
    pending_edge_max = 0

    def account(sends) -> None:
        """Validate and account one round's sends (the collect() analogue)."""
        nonlocal messages_sent, words_sent, max_message_words
        nonlocal pending_arcs, pending_values, pending_msgs, pending_words, pending_edge_max
        pending_arcs = None
        pending_values = {}
        pending_msgs = 0
        pending_words = 0
        pending_edge_max = 0
        if sends is None:
            return
        sent = np.flatnonzero(sends.mask)
        count = int(sent.shape[0])
        if count == 0:
            return
        if sends.words is None:
            batch_max_msg = schema.size_words
            batch_words = schema.size_words * count
            edge_totals = np.bincount(csr.arc_edge_ids[sent]) * schema.size_words
        else:
            w = sends.words[sent]
            batch_max_msg = int(w.max())
            batch_words = int(w.sum())
            edge_totals = np.bincount(csr.arc_edge_ids[sent], weights=w)
        if batch_max_msg > budget and strict:
            raise BandwidthExceededError(
                f"packed message of schema {schema!r} is {batch_max_msg} words "
                f"(budget {budget})"
            )
        messages_sent += count
        words_sent += batch_words
        if batch_max_msg > max_message_words:
            max_message_words = batch_max_msg
        pending_arcs = sent
        pending_values = {f: sends.values[f] for f in field_dtypes}
        pending_msgs = count
        pending_words = batch_words
        pending_edge_max = int(edge_totals.max())

    state: Dict[str, Any] = {}
    account(kernel.init(state, csr))

    halted_vec = state.get("halted")  # kernel-owned boolean vector (optional)
    halted_count = int(halted_vec.sum()) if halted_vec is not None else 0

    empty_arcs = np.empty(0, dtype=np.int64)
    empty_values = {f: np.empty(0, dtype=d) for f, d in field_dtypes.items()}

    rounds = 0
    while rounds < max_rounds:
        has_pending = pending_arcs is not None
        if halted_count == n and not has_pending:
            break
        if stop_when_quiet and not has_pending and rounds > 0:
            break
        rounds += 1

        # Seal and deliver the staged batch: the message sent on arc p lands
        # in the receiver-side slot rev[p]; sorting the slots yields
        # receiver-grouped (CSR segment) order for the kernel's reductions.
        batch_msgs, batch_words, batch_edge_max = pending_msgs, pending_words, pending_edge_max
        if batch_edge_max > max_edge_round_words:
            max_edge_round_words = batch_edge_max
        if has_pending:
            slots = csr.rev[pending_arcs]
            order = np.argsort(slots)
            arcs = slots[order]
            senders = csr.indices[arcs]
            values = {f: pending_values[f][pending_arcs[order]] for f in field_dtypes}
        else:
            arcs, senders, values = empty_arcs, empty_arcs, empty_values
        inbox = PackedInbox(arcs, values)

        if trace is not None:
            # Same census as the fast worklist: every running node for
            # non-event-driven kernels, plus every receiver.
            _, receivers = inbox.segment_starts(csr)
            if kernel.event_driven:
                active_nodes = int(receivers.shape[0])
            elif halted_vec is not None:
                active_nodes = (n - halted_count) + int(halted_vec[receivers].sum())
            else:
                active_nodes = n

        account(kernel.round(state, inbox, senders, csr))
        halted_vec = state.get("halted")
        halted_count = int(halted_vec.sum()) if halted_vec is not None else 0

        if trace is not None:
            trace.record(
                RoundStats(
                    round_number=rounds,
                    active_nodes=active_nodes,
                    messages_delivered=batch_msgs,
                    words_delivered=batch_words,
                    max_edge_words=batch_edge_max,
                    halted_nodes=halted_count,
                )
            )
    else:
        raise ConvergenceError(f"simulation did not terminate within {max_rounds} rounds")

    return SimulationResult(
        rounds=rounds,
        outputs=kernel.outputs(state, csr),
        messages_sent=messages_sent,
        words_sent=words_sent,
        max_words_per_edge_round=max_edge_round_words,
        halted=halted_count == n,
        max_message_words=max_message_words,
        engine="vectorized",
        trace=trace,
    )
