"""Per-node protocol interface for the CONGEST simulator.

A distributed algorithm is expressed as a :class:`NodeAlgorithm` subclass;
the simulator instantiates one object per network node and drives them in
synchronous rounds.  Nodes only see their own id, their incident neighbour
ids, and the messages addressed to them — exactly the information available
to a CONGEST processor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence, Set

from repro.congest.message import Message

NodeId = Hashable


@dataclass
class NodeContext:
    """The immutable local view a node has of the network.

    Attributes
    ----------
    node:
        This node's identifier.
    neighbors:
        The identifiers of adjacent nodes in the communication graph.
    n:
        The number of nodes in the network (standard CONGEST assumption:
        nodes know n, or a polynomial upper bound on it).
    round_number:
        The current round (0-based), updated by the simulator each round.
    local_edges:
        Application-supplied local input: for weighted/directed instances,
        the incident input edges (each node knows the orientation/weight of
        its incident edges, paper §2.1).
    """

    node: NodeId
    neighbors: Sequence[NodeId]
    n: int
    round_number: int = 0
    local_edges: Any = None


class NodeAlgorithm:
    """Base class for per-node CONGEST protocols.

    Subclasses override :meth:`initialize` and :meth:`on_round`.  A node
    signals local termination by calling :meth:`halt`; the simulation stops
    when every node has halted (or a round limit is reached).

    The division of labour mirrors the model: ``on_round`` receives the
    messages delivered this round and returns the messages to send in the
    next round as a mapping ``neighbor -> payload`` (at most one message per
    neighbour per round; the simulator enforces the word budget).

    Protocols whose ``on_round`` is a no-op on rounds without incoming
    messages may set the class attribute ``event_driven = True``: the
    simulator (both engines) then only invokes them on rounds where they
    receive at least one message.  Event-driven protocols must not rely on
    being polled every round — in particular they must not halt on silence or
    read ``ctx.round_number`` while idle.  This is purely an optimisation
    flag; it never changes the observable execution of a protocol that
    satisfies the contract.

    **Asynchronous execution contract.**  Under ``engine="async"`` the same
    rounds are executed out of lockstep: each node advances through its own
    pulses, and a round's inbox — identical messages, ascending-sender
    delivery order — arrives at a node-specific virtual time.  Each inbox
    :class:`~repro.congest.message.Message` carries ``sent_time`` /
    ``delivery_time`` stamps (``None`` on the synchronous tiers); a protocol
    may *read* them for instrumentation, but its outputs must not depend on
    them — outputs are required to be schedule-invariant, which every
    protocol that treats ``ctx.round_number`` as a logical round counter
    already satisfies.  A protocol that genuinely needs wall-synchronous
    rounds can set ``supports_async = False``; an ``engine="async"`` request
    then falls back to the fast tier with one
    :class:`~repro.congest.engine.EngineFallbackWarning`.
    """

    #: See the class docstring; opt-in skip of idle rounds.
    event_driven = False

    #: See the class docstring; opt-out from the asynchronous tier for
    #: protocols whose semantics require lockstep rounds.
    supports_async = True

    def __init__(self) -> None:
        self._halted = False
        #: Arbitrary per-node output, readable after the simulation.
        self.output: Any = None

    # -- lifecycle ------------------------------------------------------- #
    def initialize(self, ctx: NodeContext) -> Dict[NodeId, Any]:
        """Called once before round 0; returns the messages to send in round 0."""
        return {}

    def on_round(self, ctx: NodeContext, inbox: List[Message]) -> Dict[NodeId, Any]:
        """Called every round with the messages received; returns messages to send."""
        raise NotImplementedError

    # -- fault recovery (async tier only) -------------------------------- #
    def on_link_recovery(self, ctx: NodeContext, neighbor: NodeId) -> Dict[NodeId, Any]:
        """The link to ``neighbor`` just recovered — re-announce if needed.

        Only the asynchronous tier with a fault schedule calls this hook: once
        per recovered incident link (after an ``edge_up``, or on either side of
        a restarted node once it is back).  Self-stabilizing protocols override
        it to re-send whatever state the neighbour may have missed while the
        link or one of its endpoints was down — typically the same announcement
        they would make on first contact.  The returned mapping is merged into
        the node's next outbox (the regular round's messages win on key
        collisions); the hook may also un-halt the node (``self._halted =
        False``) if reconvergence requires it to resume rounds.  The default
        ignores recoveries, which is correct for protocols that are oblivious
        to message loss.
        """
        return {}

    # -- termination ----------------------------------------------------- #
    def halt(self) -> None:
        """Mark this node as locally terminated."""
        self._halted = True

    @property
    def halted(self) -> bool:
        return self._halted


class BroadcastAll(NodeAlgorithm):
    """Utility protocol: every node floods a single value to the whole network.

    Primarily used in tests of the simulator itself; real algorithms use the
    dedicated primitives in :mod:`repro.congest.primitives`.
    """

    def __init__(self, value: Any = None) -> None:
        super().__init__()
        self.value = value
        self.known: Set[Any] = set()

    def initialize(self, ctx: NodeContext) -> Dict[NodeId, Any]:
        self.known = {(ctx.node, self.value)}
        return {v: (ctx.node, self.value) for v in ctx.neighbors}

    def on_round(self, ctx: NodeContext, inbox: List[Message]) -> Dict[NodeId, Any]:
        new = set()
        for msg in inbox:
            if msg.payload not in self.known:
                self.known.add(msg.payload)
                new.add(msg.payload)
        if not new:
            self.halt()
            self.output = self.known
            return {}
        # Forward one newly learned item per neighbour per round (CONGEST!).
        item = next(iter(new))
        return {v: item for v in ctx.neighbors}
