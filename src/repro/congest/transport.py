"""Pluggable boundary-exchange transports of the sharded CONGEST tier.

:func:`repro.congest.engine.run_sharded` partitions the node space with a
:class:`~repro.graphs.sharding.ShardPlan` and runs one worker process per
shard in a publish → verdict → gather lockstep.  Everything the parent and
the workers exchange per round — the published send mask/word slices, the
packed ``boundary_out`` payload values, the RUN/STOP verdict and the final
state merge — flows through the :class:`Transport` chosen for the run, so
the engine itself never touches an arena or a socket:

* :class:`SharedMemoryTransport` (default, ``transport="shm"``) — the
  in-host flavour.  One ``multiprocessing.shared_memory`` arena holds the
  double-banked mask/word/boundary-value segments and the shard-local state
  rows; rounds are paced by the pool barrier (two waits per round) and the
  bank flip keeps publish and gather race-free.  Zero copies cross process
  boundaries beyond the arena writes themselves.

* :class:`SocketTransport` (``transport="socket"``) — the wire flavour.
  Workers hold **no** shared memory: each keeps its state private and talks
  over localhost TCP with length-prefixed frames (a ``!I`` byte-count
  prefix).  Per worker there is one *control* connection to the parent —
  a pickled ``("hello", shard, port)`` handshake answered by the parent's
  ``("ports", {shard: port})`` broadcast, then per round one pickled
  ``("pub", shard, sent_idx, words, halted_count, halted_census)`` frame
  replacing the publish barrier and a raw 1-byte ``b"R"``/``b"S"`` verdict
  frame replacing the verdict barrier, and finally one pickled
  ``("fin", shard, state_arrays, peer_bytes)`` frame carrying the declared
  state rows for the parent-side merge.  Per :class:`PeerExchange` pair
  there is one raw peer connection (the lower-index shard dials the
  higher's ephemeral listener) carrying ``packbits(mask[src_local])``
  followed by the masked payload values, field by field — O(boundary)
  bytes per round, no indices on the wire, because the sender's
  ``ShardPlan.peer_links`` table is parallel to the receiver's
  ``PeerExchange``, which makes the byte stream bit-for-bit identical to
  the shared-memory gather.

Both transports drive the same worker loop and the same parent accounting,
so all five engine tiers stay bit-for-bit equivalent under either.  Use the
shared-memory flavour for speed on one host; use the socket flavour to
measure boundary traffic as a real network cost (``shard_stats`` gains
``wire_bytes_by_peer``/``wire_bytes_total``) or as the stepping stone to
true multi-host runs.
"""

from __future__ import annotations

import pickle
import socket as socket_mod
import struct
import time
from typing import Any, Dict, Optional

from repro import _accel
from repro.congest.engine import (
    _CMD_RUN,
    _CMD_STOP,
    _arena_layout,
    _arena_views,
    _attach_arena,
    _sharded_specs,
)


def _accel_boundary_hits():
    """The active backend's masked boundary scatter (see :mod:`repro._accel`).

    Resolved per call site rather than at import: workers inherit the
    module default (``"auto"``), and a parent-side ``accel=`` selection only
    needs to rebind the dispatch table, not reload this module.
    """
    return _accel.op("boundary_hits")
from repro.congest.kernels import PackedInbox
from repro.errors import SimulationError

__all__ = [
    "Transport",
    "SharedMemoryTransport",
    "SocketTransport",
    "TransportBrokenError",
    "TransportSetupError",
    "resolve_transport",
]


class TransportBrokenError(RuntimeError):
    """A transport connection failed mid-run (peer death, timeout, EOF)."""


class TransportSetupError(RuntimeError):
    """The transport could not be set up at all (e.g. an unbindable listener).

    Raised before any worker is committed to the run, so the engine can fall
    back to :class:`SharedMemoryTransport` with one ``EngineFallbackWarning``.
    """


def resolve_transport(transport) -> "Transport":
    """Resolve a ``transport=`` argument to a :class:`Transport` instance.

    ``None``/``"shm"``/``"shared_memory"`` → :class:`SharedMemoryTransport`;
    ``"socket"``/``"tcp"`` → :class:`SocketTransport`; an existing
    :class:`Transport` passes through unchanged.
    """
    if transport is None:
        return SharedMemoryTransport()
    if isinstance(transport, Transport):
        return transport
    if isinstance(transport, str):
        key = transport.lower().replace("-", "_")
        if key in ("shm", "shared_memory"):
            return SharedMemoryTransport()
        if key in ("socket", "tcp"):
            return SocketTransport()
    raise SimulationError(
        f"unknown shard transport {transport!r}; expected 'shm', 'socket', "
        "or a Transport instance"
    )


# --------------------------------------------------------------------------- #
# Length-prefixed frames
# --------------------------------------------------------------------------- #

_LEN = struct.Struct("!I")
_UNSET = object()


def _send_frame(sock, payload: bytes) -> int:
    """Send one ``!I``-length-prefixed frame; returns the bytes on the wire."""
    try:
        sock.sendall(_LEN.pack(len(payload)) + payload)
    except (OSError, ValueError) as exc:
        raise TransportBrokenError(
            f"transport connection lost while sending: {exc}"
        ) from None
    return _LEN.size + len(payload)


def _recv_exact(sock, nbytes: int) -> bytes:
    buf = bytearray()
    while len(buf) < nbytes:
        try:
            chunk = sock.recv(nbytes - len(buf))
        except socket_mod.timeout:
            raise TransportBrokenError(
                "timed out waiting for a transport frame"
            ) from None
        except OSError as exc:
            raise TransportBrokenError(
                f"transport connection lost: {exc}"
            ) from None
        if not chunk:
            raise TransportBrokenError("transport connection closed mid-stream")
        buf.extend(chunk)
    return bytes(buf)


def _recv_frame(sock) -> bytes:
    (length,) = _LEN.unpack(_recv_exact(sock, _LEN.size))
    return _recv_exact(sock, length)


#: Peer-mesh dial retry policy: a freshly announced listener port can refuse
#: connections for a beat if the OS is still installing the backlog (or the
#: accept side is briefly descheduled under load), so a refused dial is
#: retried with exponential backoff before the run is declared broken.
_DIAL_ATTEMPTS = 5
_DIAL_BACKOFF_BASE = 0.05  # seconds; doubles per attempt (~0.75 s total)


def _dial_peer(host: str, port: int, timeout: float, what: str):
    """Connect to ``(host, port)``, retrying refused dials with backoff.

    Only ``ConnectionRefusedError`` is retried — it is the one transient
    outcome of racing a listener that is provably coming up (the port was
    read from its hello frame).  Timeouts and other socket errors indicate a
    genuinely broken mesh and fail fast as before.
    """
    delay = _DIAL_BACKOFF_BASE
    for attempt in range(_DIAL_ATTEMPTS):
        try:
            return socket_mod.create_connection((host, port), timeout=timeout)
        except ConnectionRefusedError as exc:
            if attempt == _DIAL_ATTEMPTS - 1:
                raise TransportBrokenError(
                    f"cannot reach {what} at {host}:{port} after "
                    f"{_DIAL_ATTEMPTS} attempts: {exc}"
                ) from None
            time.sleep(delay)
            delay *= 2
        except OSError as exc:
            raise TransportBrokenError(
                f"cannot reach {what} at {host}:{port}: {exc}"
            ) from None


# --------------------------------------------------------------------------- #
# Transport interface
# --------------------------------------------------------------------------- #

class Transport:
    """A strategy for moving one sharded run's boundary exchange.

    ``create_parent`` returns the parent-side session (see
    :class:`_ShmParentSession` for the full protocol: ``descriptor`` /
    ``begin`` / ``wait_published`` / ``send_verdict`` / ``collect_states`` /
    ``wire_stats`` / ``abort`` / ``close``).  The session's ``descriptor()``
    is pickled into the run header; inside each worker its ``connect``
    builds the worker-side session (``adopt_state`` / ``publish`` /
    ``wait_verdict`` / ``gather`` / ``check_state`` / ``finish`` /
    ``close``) that :func:`repro.congest.engine._shard_worker_run` drives.
    """

    name = "?"

    def create_parent(self, plan, schema, state_schema, csr, *, timeout,
                      want_census, barrier=None):
        raise NotImplementedError


# --------------------------------------------------------------------------- #
# Worker-side common machinery
# --------------------------------------------------------------------------- #

class _WorkerSessionBase:
    """Shared worker-session state: exchange tables and the gather buffers.

    The interior gather (slots fed by this shard's own previous sends) never
    crosses a transport — both flavours read it from the worker-private
    ``prev`` sends object, exactly as the original arena worker did.
    """

    def __init__(self, plan, shard_index, kernel, want_census) -> None:
        import numpy as np

        self._np = np
        self._plan = plan
        self._csr = plan.csr
        self._shard_index = shard_index
        self._shard = plan.shard(shard_index)
        self._exchange = plan.exchange(shard_index)
        self._kernel = kernel
        self._state_schema = kernel.state_schema(self._csr)
        self._field_names = [name for name, _ in kernel.schema.fields]
        self._field_dtypes = dict(kernel.schema.fields)
        self._size_words = kernel.schema.size_words
        self._alo = self._shard.arc_lo
        self._want_census = want_census
        self._has_halted = any(v.name == "halted" for v in self._state_schema)
        self._gather_buf = {
            f: np.empty(self._shard.num_arcs, dtype=np.dtype(d))
            for f, d in kernel.schema.fields
        }
        self._hitbuf = np.zeros(self._shard.num_arcs, dtype=bool)
        self._empty_idx = np.empty(0, dtype=np.int64)

    # Hooks a flavour may leave as no-ops ---------------------------------- #
    def adopt_state(self, state) -> None:
        return

    def check_state(self, state) -> None:
        return

    def finish(self, state) -> None:
        return

    def close(self) -> None:
        return

    # Gather helpers shared by both flavours ------------------------------- #
    def _gather_interior(self, prev) -> None:
        hitbuf = self._hitbuf
        hitbuf[:] = False
        exchange = self._exchange
        if prev is not None and exchange.int_src.shape[0]:
            # The masked scatter runs on the active _accel backend (plain
            # numpy, or a fused numba loop): collect the receiver-side slots
            # fed by this shard's own sends and mark them hit.
            slots, src = _accel_boundary_hits()(
                prev.mask, exchange.int_src, exchange.int_slots,
                exchange.int_src, hitbuf,
            )
            for f in self._field_names:
                self._gather_buf[f][slots] = prev.values[f][src]

    def _finish_gather(self):
        np = self._np
        hit = np.flatnonzero(self._hitbuf)
        arcs = self._alo + hit
        inbox = PackedInbox(
            arcs, {f: self._gather_buf[f][hit] for f in self._field_names}
        )
        return inbox, self._csr.indices[arcs]


# --------------------------------------------------------------------------- #
# Shared-memory flavour
# --------------------------------------------------------------------------- #

class _ShmWorkerFactory:
    """Picklable worker-side entry point of the shared-memory transport."""

    name = "shm"

    def __init__(self, shm_name, layout) -> None:
        self.shm_name = shm_name
        self.layout = layout

    def connect(self, plan, shard_index, kernel, barrier, timeout, want_census):
        return _ShmWorkerSession(
            self, plan, shard_index, kernel, barrier, timeout, want_census
        )


class _ShmWorkerSession(_WorkerSessionBase):
    """Worker side of the arena exchange (the original two-barrier lockstep).

    The banks alternate per publish (double buffering), which is what removes
    the third barrier of the original design: a worker publishing round
    ``r+1`` writes the opposite bank from the one its peers are still
    gathering round ``r`` from, so publish and gather never race.
    """

    def __init__(self, factory, plan, shard_index, kernel, barrier, timeout,
                 want_census) -> None:
        super().__init__(plan, shard_index, kernel, want_census)
        self._barrier = barrier
        self._timeout = timeout
        self._shm = _attach_arena(factory.shm_name)
        views = _arena_views(self._shm.buf, factory.layout)
        self._views = views
        s = shard_index
        fns = self._field_names
        self._ctrl = views["ctrl"]
        self._my_mask = [views[f"mask:{s}:{b}"] for b in (0, 1)]
        self._my_words = [views[f"words:{s}:{b}"] for b in (0, 1)]
        self._my_bval = [
            {f: views[f"bvalue:{s}:{f}:{b}"] for f in fns} for b in (0, 1)
        ]
        self._peer_mask = {
            p.peer: [views[f"mask:{p.peer}:{b}"] for b in (0, 1)]
            for p in self._exchange.peers
        }
        self._peer_bval = {
            p.peer: [
                {f: views[f"bvalue:{p.peer}:{f}:{b}"] for f in fns}
                for b in (0, 1)
            ]
            for p in self._exchange.peers
        }
        self._bout_local = plan.boundary_out(s) - self._alo
        self._state_views: Dict[str, Any] = {}
        self._bank = 0
        self._published = False

    def adopt_state(self, state) -> None:
        # Copy this shard's rows into the arena segments and rebind so every
        # subsequent kernel write lands in shared memory.
        for vec in self._state_schema:
            seg = self._views[f"state:{self._shard_index}:{vec.name}"]
            local = state[vec.name]
            if tuple(local.shape) != tuple(seg.shape):
                raise SimulationError(
                    f"kernel {type(self._kernel).__name__} allocated state "
                    f"vector {vec.name!r} with shape {tuple(local.shape)}; "
                    f"the shard-local contract requires {tuple(seg.shape)} "
                    f"(shard {self._shard_index})"
                )
            seg[...] = local
            state[vec.name] = seg
            self._state_views[vec.name] = seg

    def publish(self, sends, state) -> None:
        if self._published:
            self._bank ^= 1
        else:
            self._published = True
        bank = self._bank
        mask = self._my_mask[bank]
        if sends is None:
            mask[:] = False
        else:
            mask[:] = sends.mask
            words = self._my_words[bank]
            if sends.words is None:
                words[:] = self._size_words
            else:
                words[:] = sends.words
            if self._bout_local.shape[0]:
                bvals = self._my_bval[bank]
                for f in self._field_names:
                    bvals[f][:] = sends.values[f][self._bout_local]
        self._barrier.wait(self._timeout)

    def wait_verdict(self) -> bool:
        self._barrier.wait(self._timeout)
        return self._ctrl[0] != _CMD_STOP

    def gather(self, prev):
        bank = self._bank
        self._gather_interior(prev)
        boundary_hits = _accel_boundary_hits()
        for p in self._exchange.peers:
            slots, packed = boundary_hits(
                self._peer_mask[p.peer][bank], p.src_local, p.recv_slots,
                p.src_packed, self._hitbuf,
            )
            if not slots.shape[0]:
                continue
            bvals = self._peer_bval[p.peer][bank]
            for f in self._field_names:
                self._gather_buf[f][slots] = bvals[f][packed]
        return self._finish_gather()

    def check_state(self, state) -> None:
        # Declared vectors must be mutated in place: a rebind would silently
        # detach this worker from the arena (the vectorized tier re-reads the
        # dict, so the bug would not show there).
        for vec in self._state_schema:
            if state[vec.name] is not self._state_views[vec.name]:
                raise SimulationError(
                    f"kernel rebound declared state vector {vec.name!r} "
                    "during round(); sharded kernels must write declared "
                    "state in place"
                )

    def close(self) -> None:
        self._views = None
        self._ctrl = None
        self._my_mask = self._my_words = self._my_bval = None
        self._peer_mask = self._peer_bval = None
        self._state_views = {}
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - state views still referenced
            pass


class _ShmPublishBatch:
    """One published round of the arena, read bank-aware from live views."""

    __slots__ = ("_sess", "_bank", "_hc")

    def __init__(self, sess, bank) -> None:
        self._sess = sess
        self._bank = bank
        self._hc = _UNSET

    def parts(self):
        sess = self._sess
        np = sess._np
        bank = self._bank
        for s in range(sess._k):
            idx = np.flatnonzero(sess._mask[s][bank])
            if idx.shape[0]:
                yield sess._arc_lo[s] + idx, sess._words[s][bank][idx]

    @property
    def halted_count(self) -> Optional[int]:
        if self._hc is _UNSET:
            sess = self._sess
            self._hc = (
                sum(int(hv.sum()) for hv in sess._halted)
                if sess._halted is not None
                else None
            )
        return self._hc

    def fill_halted(self, out) -> None:
        self._sess._np.concatenate(self._sess._halted, out=out)


class _ShmParentSession:
    """Parent side of the arena exchange: owns the block, reads live views."""

    name = "shm"

    def __init__(self, plan, schema, state_schema, csr, timeout, want_census,
                 barrier) -> None:
        import numpy as np
        from multiprocessing import shared_memory

        if barrier is None:
            raise SimulationError(
                "the shared-memory transport requires the pool barrier"
            )
        specs, state_bytes, exchange_bytes = _sharded_specs(
            plan, schema, state_schema, csr
        )
        layout, total = _arena_layout(specs)
        self._np = np
        self._plan = plan
        self._csr = csr
        self._state_schema = state_schema
        self._timeout = timeout
        self._barrier = barrier
        self._layout = layout
        # Created before the engine marks the pool busy: an allocation
        # failure here (e.g. ENOSPC on /dev/shm) must leave the pool
        # reusable, and it propagates as-is (no socket-style fallback below
        # shared memory exists).
        self._shm = shared_memory.SharedMemory(create=True, size=total)
        k = plan.num_shards
        self._k = k
        views = _arena_views(self._shm.buf, layout)
        self._views = views
        self._ctrl = views["ctrl"]
        self._mask = [[views[f"mask:{s}:{b}"] for b in (0, 1)] for s in range(k)]
        self._words = [
            [views[f"words:{s}:{b}"] for b in (0, 1)] for s in range(k)
        ]
        self._halted = (
            [views[f"state:{s}:halted"] for s in range(k)]
            if any(v.name == "halted" for v in state_schema)
            else None
        )
        self._arc_lo = [int(x) for x in plan.arc_starts[:-1]]
        self._bank = 0
        self._started = False
        self.state_bytes = [int(b) for b in state_bytes]
        self.exchange_bytes = [int(b) for b in exchange_bytes]
        self.arena_bytes = int(total)

    def descriptor(self):
        return _ShmWorkerFactory(self._shm.name, self._layout)

    def begin(self) -> None:
        return

    def wait_published(self):
        if self._started:
            self._bank ^= 1
        else:
            self._started = True
        self._barrier.wait(self._timeout)
        return _ShmPublishBatch(self, self._bank)

    def send_verdict(self, stop: bool) -> None:
        self._ctrl[0] = _CMD_STOP if stop else _CMD_RUN
        self._barrier.wait(self._timeout)

    def collect_states(self):
        np = self._np
        merged: Dict[str, Any] = {}
        for vec in self._state_schema:
            full = np.empty(vec.shape(self._csr), dtype=np.dtype(vec.dtype))
            for s in range(self._k):
                full[vec.row_slice(self._plan.shard(s))] = self._views[
                    f"state:{s}:{vec.name}"
                ]
            merged[vec.name] = full
        return merged

    def wire_stats(self):
        return {
            "wire_bytes_by_peer": {},
            "wire_control_bytes": 0,
            "wire_bytes_total": 0,
        }

    def abort(self) -> None:
        try:
            self._barrier.abort()
        except Exception:
            pass

    def close(self) -> None:
        # Drop our arena views before closing; if an in-flight exception's
        # traceback still pins one, unlink alone is enough (the mapping dies
        # with the last reference, the name is gone now).
        self._views = None
        self._ctrl = None
        self._mask = self._words = self._halted = None
        try:
            self._shm.close()
        except BufferError:
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double cleanup
            pass


class SharedMemoryTransport(Transport):
    """The default in-host transport: one shared-memory arena, pool barrier."""

    name = "shm"

    def create_parent(self, plan, schema, state_schema, csr, *, timeout,
                      want_census, barrier=None):
        return _ShmParentSession(
            plan, schema, state_schema, csr, timeout, want_census, barrier
        )


# --------------------------------------------------------------------------- #
# Socket flavour
# --------------------------------------------------------------------------- #

class _SocketWorkerFactory:
    """Picklable worker-side entry point of the socket transport."""

    name = "socket"

    def __init__(self, host, port) -> None:
        self.host = host
        self.port = port

    def connect(self, plan, shard_index, kernel, barrier, timeout, want_census):
        # The pool barrier is deliberately unused: rounds are paced by
        # control/peer frames so workers hold no shared synchronization
        # primitive beyond the job pipe.
        return _SocketWorkerSession(
            self, plan, shard_index, kernel, timeout, want_census
        )


class _SocketWorkerSession(_WorkerSessionBase):
    """Worker side of the TCP exchange: control frames + one conn per peer."""

    def __init__(self, factory, plan, shard_index, kernel, timeout,
                 want_census) -> None:
        super().__init__(plan, shard_index, kernel, want_census)
        np = self._np
        self._timeout = timeout
        self._ctrl = None
        self._listener = None
        self._peer_conns: Dict[int, Any] = {}
        s = shard_index
        host = factory.host
        # Send-side tables: parallel to each receiver's PeerExchange, so the
        # wire carries mask[src_local] + masked values and no indices.
        self._links = list(plan.peer_links(s))
        self._peer_sent: Dict[int, int] = {t: 0 for t, _ in self._links}
        self._zero_got = {
            t: np.zeros(src_local.shape[0], dtype=bool)
            for t, src_local in self._links
        }
        try:
            self._listener = socket_mod.create_server((host, 0))
            self._listener.settimeout(timeout)
            my_port = self._listener.getsockname()[1]
            try:
                self._ctrl = socket_mod.create_connection(
                    (host, factory.port), timeout=timeout
                )
            except OSError as exc:
                raise TransportBrokenError(
                    f"cannot reach the shard parent at {host}:{factory.port}: "
                    f"{exc}"
                ) from None
            self._ctrl.settimeout(timeout)
            _send_frame(
                self._ctrl,
                pickle.dumps(
                    ("hello", s, my_port), protocol=pickle.HIGHEST_PROTOCOL
                ),
            )
            _tag, ports = pickle.loads(_recv_frame(self._ctrl))
            # Build the peer mesh: the lower-index shard of each pair dials
            # the higher's listener (connects complete via the TCP backlog,
            # so dial-then-accept cannot deadlock) and identifies itself
            # with a 4-byte shard-index frame.
            peer_ids = sorted(self._peer_sent)
            for t in peer_ids:
                if t > s:
                    conn = _dial_peer(
                        host, ports[t], timeout, f"peer shard {t}"
                    )
                    conn.settimeout(timeout)
                    _send_frame(conn, _LEN.pack(s))
                    self._peer_conns[t] = conn
            for _ in range(sum(1 for t in peer_ids if t < s)):
                try:
                    conn, _addr = self._listener.accept()
                except socket_mod.timeout:
                    raise TransportBrokenError(
                        "timed out waiting for a peer shard connection"
                    ) from None
                except OSError as exc:
                    raise TransportBrokenError(
                        f"peer accept failed: {exc}"
                    ) from None
                conn.settimeout(timeout)
                (peer,) = _LEN.unpack(_recv_frame(conn))
                self._peer_conns[int(peer)] = conn
            self._listener.close()
            self._listener = None
        except BaseException:
            self.close()
            raise

    def publish(self, sends, state) -> None:
        np = self._np
        if sends is None:
            idx = self._empty_idx
            words = None
        else:
            idx = np.flatnonzero(sends.mask)
            words = (
                None
                if sends.words is None
                else np.ascontiguousarray(sends.words[idx])
            )
        hc = int(state["halted"].sum()) if self._has_halted else None
        census = (
            np.packbits(state["halted"]).tobytes()
            if (self._want_census and self._has_halted)
            else None
        )
        _send_frame(
            self._ctrl,
            pickle.dumps(
                ("pub", self._shard_index, idx, words, hc, census),
                protocol=pickle.HIGHEST_PROTOCOL,
            ),
        )
        for t, src_local in self._links:
            got = self._zero_got[t] if sends is None else sends.mask[src_local]
            chunks = [np.packbits(got).tobytes()]
            if sends is not None:
                gsel = src_local[got]
                if gsel.shape[0]:
                    for f in self._field_names:
                        chunks.append(
                            np.ascontiguousarray(sends.values[f][gsel]).tobytes()
                        )
            self._peer_sent[t] += _send_frame(
                self._peer_conns[t], b"".join(chunks)
            )

    def wait_verdict(self) -> bool:
        return _recv_frame(self._ctrl) == b"R"

    def gather(self, prev):
        np = self._np
        self._gather_interior(prev)
        for p in self._exchange.peers:
            frame = _recv_frame(self._peer_conns[p.peer])
            ln = p.recv_slots.shape[0]
            mask_bytes = (ln + 7) >> 3
            got = np.unpackbits(
                np.frombuffer(frame, dtype=np.uint8, count=mask_bytes),
                count=ln,
            ).astype(bool)
            count = int(got.sum())
            if count == 0:
                continue
            slots = p.recv_slots[got]
            self._hitbuf[slots] = True
            offset = mask_bytes
            for f in self._field_names:
                dt = np.dtype(self._field_dtypes[f])
                self._gather_buf[f][slots] = np.frombuffer(
                    frame, dtype=dt, count=count, offset=offset
                )
                offset += count * dt.itemsize
        return self._finish_gather()

    def finish(self, state) -> None:
        # Ship the declared state rows for the parent-side merge, plus this
        # worker's per-peer wire tally (only a clean STOP reaches here, so
        # aborted runs simply report no wire stats).
        arrays = {vec.name: state[vec.name] for vec in self._state_schema}
        peer_bytes = {
            f"{self._shard_index}->{t}": int(nbytes)
            for t, nbytes in sorted(self._peer_sent.items())
        }
        _send_frame(
            self._ctrl,
            pickle.dumps(
                ("fin", self._shard_index, arrays, peer_bytes),
                protocol=pickle.HIGHEST_PROTOCOL,
            ),
        )

    def close(self) -> None:
        for conn in self._peer_conns.values():
            try:
                conn.close()
            except OSError:
                pass
        self._peer_conns = {}
        if self._ctrl is not None:
            try:
                self._ctrl.close()
            except OSError:
                pass
            self._ctrl = None
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None


class _SocketPublishBatch:
    """One published round assembled from the workers' pub frames."""

    __slots__ = ("_sess", "_pubs")

    def __init__(self, sess, pubs) -> None:
        self._sess = sess
        self._pubs = pubs

    def parts(self):
        np = self._sess._np
        sess = self._sess
        for s, (idx, words, _hc, _census) in enumerate(self._pubs):
            if idx.shape[0] == 0:
                continue
            # words=None means every message is the schema's fixed size —
            # exactly what the arena flavour writes into its words bank.
            w = (
                words
                if words is not None
                else np.full(idx.shape[0], sess._size_words, dtype=np.int64)
            )
            yield sess._arc_lo[s] + idx, w

    @property
    def halted_count(self) -> Optional[int]:
        if not self._sess._has_halted:
            return None
        return sum(int(p[2]) for p in self._pubs)

    def fill_halted(self, out) -> None:
        np = self._sess._np
        plan = self._sess._plan
        for s, (_idx, _w, _hc, census) in enumerate(self._pubs):
            shard = plan.shard(s)
            bits = np.unpackbits(
                np.frombuffer(census, dtype=np.uint8), count=shard.num_nodes
            )
            out[shard.node_lo:shard.node_hi] = bits.astype(bool)


class _SocketParentSession:
    """Parent side of the TCP exchange: the listener and k control conns."""

    name = "socket"

    def __init__(self, host, plan, schema, state_schema, csr, timeout,
                 want_census) -> None:
        import numpy as np

        self._np = np
        self._host = host
        self._plan = plan
        self._csr = csr
        self._state_schema = state_schema
        self._timeout = timeout
        self._k = plan.num_shards
        self._has_halted = any(v.name == "halted" for v in state_schema)
        self._size_words = schema.size_words
        self._arc_lo = [int(x) for x in plan.arc_starts[:-1]]
        self._conns: Dict[int, Any] = {}
        self._ctrl_bytes = 0
        self._peer_bytes: Dict[str, int] = {}
        self._pub = [None] * self._k
        try:
            self._listener = socket_mod.create_server((host, 0))
        except OSError as exc:
            raise TransportSetupError(
                f"cannot listen on {host!r} for shard workers: {exc}"
            ) from None
        self._listener.settimeout(timeout)
        self._port = self._listener.getsockname()[1]
        # The socket flavour allocates no arena; the per-shard declared
        # state footprint is still reported so memory assertions hold.
        self.state_bytes = [
            int(state_schema.local_nbytes(plan.shard(s)))
            for s in range(self._k)
        ]
        self.exchange_bytes = [0] * self._k
        self.arena_bytes = 0

    def descriptor(self):
        return _SocketWorkerFactory(self._host, self._port)

    def begin(self) -> None:
        ports: Dict[int, int] = {}
        for _ in range(self._k):
            try:
                conn, _addr = self._listener.accept()
            except socket_mod.timeout:
                raise TransportBrokenError(
                    "timed out waiting for shard workers to connect"
                ) from None
            except OSError as exc:
                raise TransportBrokenError(
                    f"worker accept failed: {exc}"
                ) from None
            conn.settimeout(self._timeout)
            frame = _recv_frame(conn)
            self._ctrl_bytes += _LEN.size + len(frame)
            _tag, s, peer_port = pickle.loads(frame)
            self._conns[s] = conn
            ports[s] = peer_port
        blob = pickle.dumps(("ports", ports), protocol=pickle.HIGHEST_PROTOCOL)
        for s in range(self._k):
            self._ctrl_bytes += _send_frame(self._conns[s], blob)

    def wait_published(self):
        for s in range(self._k):
            frame = _recv_frame(self._conns[s])
            self._ctrl_bytes += _LEN.size + len(frame)
            _tag, _s, idx, words, hc, census = pickle.loads(frame)
            self._pub[s] = (idx, words, hc, census)
        return _SocketPublishBatch(self, list(self._pub))

    def send_verdict(self, stop: bool) -> None:
        frame = b"S" if stop else b"R"
        for s in range(self._k):
            self._ctrl_bytes += _send_frame(self._conns[s], frame)

    def collect_states(self):
        np = self._np
        parts = [None] * self._k
        for s in range(self._k):
            frame = _recv_frame(self._conns[s])
            self._ctrl_bytes += _LEN.size + len(frame)
            _tag, _s, arrays, peer_bytes = pickle.loads(frame)
            parts[s] = arrays
            for key, nbytes in peer_bytes.items():
                self._peer_bytes[key] = self._peer_bytes.get(key, 0) + int(nbytes)
        merged: Dict[str, Any] = {}
        for vec in self._state_schema:
            full = np.empty(vec.shape(self._csr), dtype=np.dtype(vec.dtype))
            for s in range(self._k):
                full[vec.row_slice(self._plan.shard(s))] = parts[s][vec.name]
            merged[vec.name] = full
        return merged

    def wire_stats(self):
        peer_total = sum(self._peer_bytes.values())
        return {
            "wire_bytes_by_peer": dict(sorted(self._peer_bytes.items())),
            "wire_control_bytes": int(self._ctrl_bytes),
            "wire_bytes_total": int(self._ctrl_bytes + peer_total),
        }

    def abort(self) -> None:
        # Tearing the connections down wakes every worker blocked on a frame
        # (their recv raises TransportBrokenError and they park or exit).
        self.close()

    def close(self) -> None:
        for conn in self._conns.values():
            try:
                conn.close()
            except OSError:
                pass
        self._conns = {}
        try:
            self._listener.close()
        except OSError:
            pass


class SocketTransport(Transport):
    """Localhost-TCP transport: shard workers hold no shared memory.

    ``host`` is the interface both the parent listener and every worker
    listener bind to (default loopback).  Construction is cheap; the
    listener is bound per run in ``create_parent``, and a bind failure
    raises :class:`TransportSetupError` so the engine can degrade to
    :class:`SharedMemoryTransport` with a single ``EngineFallbackWarning``.
    """

    name = "socket"

    def __init__(self, host: str = "127.0.0.1") -> None:
        self.host = host

    def create_parent(self, plan, schema, state_schema, csr, *, timeout,
                      want_census, barrier=None):
        return _SocketParentSession(
            self.host, plan, schema, state_schema, csr, timeout, want_census
        )
