"""Messages and bandwidth accounting for the CONGEST simulator.

A CONGEST message carries O(log n) bits.  We model this as a small tuple of
*words*, where a word is an integer/float of magnitude polynomial in n (and
therefore representable in O(log n) bits).  The simulator enforces a
configurable per-message word budget — protocols that try to stuff large
payloads into one round raise :class:`~repro.errors.BandwidthExceededError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Tuple

NodeId = Hashable

#: Default number of O(log n)-bit words allowed per message.  The CONGEST
#: model allows messages of O(log n) bits; a handful of words (ids, distances,
#: small tags) is the standard interpretation used by the algorithms here.
DEFAULT_WORDS_PER_MESSAGE = 8


def payload_size_words(payload: Any) -> int:
    """Return the size of ``payload`` in O(log n)-bit words.

    Scalars (ints, floats, bools, short strings, ``None``) count as one word;
    tuples/lists/dicts count the sum of their elements plus one word of
    framing.  This is intentionally coarse — the goal is to catch protocols
    that cheat by shipping whole subgraphs in a single message, not to model
    an exact wire format.
    """
    if payload is None or isinstance(payload, (bool, int, float)):
        return 1
    if isinstance(payload, str):
        # Strings of length ≤ 16 chars (identifiers, tags) count as one word.
        return max(1, (len(payload) + 15) // 16)
    if isinstance(payload, (tuple, list, set, frozenset)):
        return 1 + sum(payload_size_words(x) for x in payload)
    if isinstance(payload, dict):
        return 1 + sum(
            payload_size_words(k) + payload_size_words(v) for k, v in payload.items()
        )
    # Unknown objects count as a conservative fixed size.
    return 4


@dataclass(frozen=True)
class Message:
    """A single message in flight during one synchronous round."""

    sender: NodeId
    receiver: NodeId
    payload: Any

    def size_words(self) -> int:
        return payload_size_words(self.payload)
