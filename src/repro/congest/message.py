"""Messages and bandwidth accounting for the CONGEST simulator.

A CONGEST message carries O(log n) bits.  We model this as a small tuple of
*words*, where a word is an integer/float of magnitude polynomial in n (and
therefore representable in O(log n) bits).  The simulator enforces a
configurable per-message word budget — protocols that try to stuff large
payloads into one round raise :class:`~repro.errors.BandwidthExceededError`.

Two payload representations coexist:

* **Free-form payloads** — arbitrary small Python objects, sized by the
  recursive :func:`payload_size_words`.  This is what hand-written
  :class:`~repro.congest.node.NodeAlgorithm` protocols use.
* **Packed payloads** — a :class:`PayloadSchema` declares a fixed-shape typed
  payload (an optional constant tag plus named scalar fields, e.g.
  Bellman-Ford's ``("dist", float64)``).  A whole round's traffic is then a
  set of preallocated numpy arrays keyed by dense arc/edge id, and
  ``payload_size_words`` of every message is the O(1) constant
  :attr:`PayloadSchema.size_words` instead of a per-message recursive walk.
  The vectorized engine tier (:mod:`repro.congest.kernels`) is built on this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Tuple

NodeId = Hashable

#: Default number of O(log n)-bit words allowed per message.  The CONGEST
#: model allows messages of O(log n) bits; a handful of words (ids, distances,
#: small tags) is the standard interpretation used by the algorithms here.
DEFAULT_WORDS_PER_MESSAGE = 8


def payload_size_words(payload: Any) -> int:
    """Return the size of ``payload`` in O(log n)-bit words.

    Scalars (ints, floats, bools, short strings, ``None``) count as one word;
    tuples/lists/dicts count the sum of their elements plus one word of
    framing.  This is intentionally coarse — the goal is to catch protocols
    that cheat by shipping whole subgraphs in a single message, not to model
    an exact wire format.
    """
    if payload is None or isinstance(payload, (bool, int, float)):
        return 1
    if isinstance(payload, str):
        # Strings of length ≤ 16 chars (identifiers, tags) count as one word.
        return max(1, (len(payload) + 15) // 16)
    if isinstance(payload, (tuple, list, set, frozenset)):
        return 1 + sum(payload_size_words(x) for x in payload)
    if isinstance(payload, dict):
        return 1 + sum(
            payload_size_words(k) + payload_size_words(v) for k, v in payload.items()
        )
    # Unknown objects count as a conservative fixed size.
    return 4


@dataclass(frozen=True)
class Message:
    """A single protocol message in flight.

    On the synchronous tiers a message lives for exactly one round and the
    timing fields stay ``None``.  The event-driven asynchronous tier
    (:mod:`repro.congest.scheduler`) stamps ``sent_time`` / ``delivery_time``
    with the virtual times at which the message departed and arrived — the
    delivery-time-aware inbox contract: protocols *may read* the stamps (for
    instrumentation), but must not let their outputs depend on them, since
    outputs are required to be schedule-invariant (see
    :class:`~repro.congest.node.NodeAlgorithm`).
    """

    sender: NodeId
    receiver: NodeId
    payload: Any
    sent_time: Optional[int] = None
    delivery_time: Optional[int] = None

    def size_words(self) -> int:
        return payload_size_words(self.payload)


class PayloadSchema:
    """Declaration of a fixed-shape typed payload for whole-round packing.

    A schema names the scalar fields a protocol ships per message (plus an
    optional constant string tag, the common ``("tag", value, ...)`` idiom of
    the scalar protocols).  Packed payloads round-trip to the exact tuples the
    scalar protocol sends — ``pack(3.0)`` for a schema with tag ``"dist"``
    yields ``("dist", 3.0)`` — so the two representations are bit-for-bit
    interchangeable in the accounting.

    Parameters
    ----------
    fields:
        ``(name, numpy dtype string)`` pairs, e.g. ``(("dist", "f8"),)``.
        One preallocated array per field holds a round's traffic in the
        vectorized tier.
    tag:
        Optional constant leading tag included in every unpacked tuple.

    Attributes
    ----------
    size_words:
        The O(1) size of every message of this schema, computed once from a
        zero-valued sample via :func:`payload_size_words` so packed and
        free-form accounting can never diverge.
    """

    __slots__ = ("fields", "tag", "size_words", "_zero")

    def __init__(self, fields: Tuple[Tuple[str, str], ...], tag: Optional[str] = None) -> None:
        self.fields: Tuple[Tuple[str, str], ...] = tuple((str(n), str(d)) for n, d in fields)
        self.tag = tag
        self._zero = tuple(0 for _ in self.fields)
        self.size_words = payload_size_words(self.pack(*self._zero))

    def field_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.fields)

    def pack(self, *values: Any) -> Tuple[Any, ...]:
        """Return the scalar-protocol tuple for one message's field values."""
        if len(values) != len(self.fields):
            raise ValueError(
                f"schema has {len(self.fields)} fields, got {len(values)} values"
            )
        if self.tag is None:
            return tuple(values)
        return (self.tag,) + tuple(values)

    def unpack(self, payload: Any) -> Tuple[Any, ...]:
        """Return the field values of a scalar-protocol payload tuple."""
        if not isinstance(payload, tuple):
            raise ValueError(f"packed payloads are tuples, got {type(payload)!r}")
        body = payload
        if self.tag is not None:
            if not payload or payload[0] != self.tag:
                raise ValueError(f"payload {payload!r} does not carry tag {self.tag!r}")
            body = payload[1:]
        if len(body) != len(self.fields):
            raise ValueError(
                f"payload {payload!r} does not match schema fields {self.field_names()}"
            )
        return tuple(body)

    def alloc(self, num_slots: int) -> Dict[str, Any]:
        """Preallocate one numpy array per field for ``num_slots`` messages.

        This is the round buffer of the vectorized tier: one slot per dense
        CSR arc, reused across rounds (no per-message allocation).
        """
        import numpy as np

        return {name: np.zeros(num_slots, dtype=dtype) for name, dtype in self.fields}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PayloadSchema(tag={self.tag!r}, fields={self.fields!r}, "
            f"size_words={self.size_words})"
        )
