"""Seeded fault injection for the asynchronous CONGEST tier.

A failure is just another event class: this module defines deterministic
*fault schedules* — timed crash/recover transitions of nodes and edges —
that :func:`~repro.congest.scheduler.run_async` injects into its event queue
as first-class events, turning the discrete-event tier into a resilience
testbed (``CongestNetwork.run(engine="async", fault_schedule=...)``).

**Fault model (fail-stop with transient message loss).**

* *Edge crash*: while an edge is down — and for any message that was in
  flight when it went down — protocol payloads crossing it are silently
  dropped.  On recovery both endpoints receive an
  :meth:`~repro.congest.node.NodeAlgorithm.on_link_recovery` notice so
  self-stabilizing protocols can re-announce across the healed link.
* *Node crash*: the node stops executing and loses all volatile protocol
  state; payloads it sent that are still in flight, and payloads addressed
  to it, are dropped.
* *Node restart*: the scheduler constructs a **fresh** algorithm instance
  (via the run's ``algorithm_factory``) and re-runs its ``initialize`` —
  the node restarts from its init and re-enters the synchronizer at its
  next pulse.  Recovery notices fire in both directions (the restarted
  node for each live neighbour, and each live neighbour for it), which is
  what lets monotone protocols (Bellman-Ford, BFS tree, flooding)
  reconverge to the centralized oracle on the post-fault graph.

The synchronizer's control plane (empty pulse-marker envelopes and
self-clock ticks) is modelled as reliable and out-of-band: a crashed node's
pulses keep ticking as scheduler-driven *ghost* pulses that run no protocol
code and carry no payloads.  This is the standard perfect-failure-detector
assumption — it keeps the α-synchronizer's pulse structure (and therefore
round accounting, verdicts and the fault-free fast path) exactly identical
to the fault-free tier while only protocol payloads and protocol state
fail.

**Determinism.**  A :class:`FaultSchedule` is plain data (sorted
:class:`FaultEvent` transitions at integer virtual times ≥ 1), and the
ready-made generators (:class:`MassFailure`, :class:`Churn`,
:class:`LinkFlap`) derive every victim and every fault time from a seeded
stateless hash — exactly like the tier's
:class:`~repro.congest.scheduler.DelayModel` machinery — so identical
``(graph, seed, FaultSchedule, DelayModel)`` reproduce bit-for-bit
identical results, ledgers and fault :class:`EventRecord` streams, and an
*empty* schedule is bit-for-bit identical to a fault-free run.

**Reconvergence guarantee.**  The built-in generators emit *transient*
faults: every crash has a matching recovery, so the post-fault graph equals
the original graph and the wired protocols provably reconverge (asserted
against centralized oracles in ``tests/test_fault_injection.py``).  Raw
schedules may leave elements permanently down; monotone protocols then keep
state learned through the dead elements, which is reported honestly —
``FaultVerdict.reconverged`` is ``False`` whenever anything is still down
at the end of the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import FaultInjectionError, SimulationError

NodeId = Hashable

_M64 = (1 << 64) - 1


def _mix(*parts: int) -> int:
    """The scheduler's SplitMix64-style stateless hash (order-sensitive).

    Generators use it so every victim/time is a pure function of
    ``(seed, ...)`` — independent of draw order, like delay models.
    """
    x = 0x9E3779B97F4A7C15
    for v in parts:
        x = (x ^ (v & _M64)) * 0xBF58476D1CE4E5B9 & _M64
        x ^= x >> 31
    x = (x * 0x94D049BB133111EB) & _M64
    x ^= x >> 29
    return x


#: Recognised fault-event kinds.
FAULT_KINDS = ("node_down", "node_up", "edge_down", "edge_up")


@dataclass(frozen=True)
class FaultEvent:
    """One atomic fault transition at an integer virtual time.

    ``kind`` is one of :data:`FAULT_KINDS`; ``target`` is a node id for
    node events and an unordered ``(u, v)`` endpoint pair for edge events.
    Times are virtual (event-queue) times and must be ``>= 1`` — pulse 0
    (``initialize``) always runs on the intact network.
    """

    time: int
    kind: str
    target: Any

    def is_node_event(self) -> bool:
        return self.kind.startswith("node")


@dataclass
class FaultVerdict:
    """Fault accounting attached to ``SimulationResult.fault_verdict``.

    Attributes
    ----------
    faults_injected:
        Number of fault events that fired during the run.
    reconverged:
        ``True`` when the run reached a quiescent/halted stop with every
        crashed node and edge recovered — i.e. the protocol restabilised
        on the post-fault graph.  ``False`` when anything was still down
        at the end (stale state may then survive; see the module notes).
    last_fault_round:
        The logical round during which the final fault event fired.
    rounds_to_reconverge:
        Rounds executed after the final fault event until the run stopped
        — the protocol's recovery time.
    payloads_dropped:
        Protocol messages lost to crashed links/nodes (sent and charged to
        the ledger, never delivered).
    down_nodes_at_end / down_edges_at_end:
        Elements left permanently failed by the schedule, if any.
    """

    faults_injected: int
    reconverged: bool
    last_fault_round: int
    rounds_to_reconverge: int
    payloads_dropped: int
    down_nodes_at_end: Tuple[Any, ...] = ()
    down_edges_at_end: Tuple[Tuple[Any, Any], ...] = ()


class FaultSchedule:
    """A validated, sorted sequence of :class:`FaultEvent` transitions.

    Construction checks the schedule's internal consistency (kinds, integer
    times ``>= 1``, alternating down/up transitions per element — crashing
    an already-crashed node or recovering a healthy edge is an overlapping
    schedule and raises :class:`~repro.errors.FaultInjectionError`).
    Validation against a concrete network (targets exist as nodes/edges)
    happens in :meth:`bind`, called by the scheduler at run start.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        evs = list(events)
        for ev in evs:
            if not isinstance(ev, FaultEvent):
                raise FaultInjectionError(
                    f"fault schedules hold FaultEvent entries, got {ev!r}"
                )
            if ev.kind not in FAULT_KINDS:
                raise FaultInjectionError(
                    f"unknown fault kind {ev.kind!r}; expected one of {FAULT_KINDS}"
                )
            if not isinstance(ev.time, int) or isinstance(ev.time, bool) or ev.time < 1:
                raise FaultInjectionError(
                    f"fault times are integers >= 1, got {ev.time!r} ({ev.kind})"
                )
            if not ev.is_node_event():
                t = ev.target
                if not isinstance(t, tuple) or len(t) != 2 or t[0] == t[1]:
                    raise FaultInjectionError(
                        f"edge fault targets are (u, v) endpoint pairs, got {t!r}"
                    )
        # Stable sort: same-time events keep their construction order.
        self.events: List[FaultEvent] = sorted(evs, key=lambda e: e.time)
        self._check_transitions()

    # ------------------------------------------------------------------ #
    @staticmethod
    def _element_key(ev: FaultEvent) -> Tuple:
        if ev.is_node_event():
            return ("node", ev.target)
        u, v = ev.target
        a, b = sorted((u, v), key=lambda x: (str(type(x)), repr(x)))
        return ("edge", a, b)

    def _check_transitions(self) -> None:
        down: Dict[Tuple, bool] = {}
        for ev in self.events:
            key = self._element_key(ev)
            is_down = down.get(key, False)
            if ev.kind.endswith("_down"):
                if is_down:
                    raise FaultInjectionError(
                        f"overlapping schedule: {ev.kind} at time {ev.time} targets "
                        f"{ev.target!r}, which is already down"
                    )
                down[key] = True
            else:
                if not is_down:
                    raise FaultInjectionError(
                        f"overlapping schedule: {ev.kind} at time {ev.time} targets "
                        f"{ev.target!r}, which is not down"
                    )
                down[key] = False

    # ------------------------------------------------------------------ #
    @property
    def fault_free(self) -> bool:
        """``True`` when the schedule injects nothing at all."""
        return not self.events

    @property
    def horizon(self) -> int:
        """The last fault time (0 for an empty schedule)."""
        return self.events[-1].time if self.events else 0

    def ensure_eventual_recovery(self, nodes: Iterable[NodeId],
                                 protocol: str = "this protocol") -> None:
        """Reject schedules that permanently crash a protocol-critical node.

        Single-source entry points pass their source/root here: crashing it
        is fine (the restart re-announces), but crashing it with no later
        recovery makes reconvergence impossible and raises
        :class:`~repro.errors.FaultInjectionError`.
        """
        critical = set(nodes)
        last: Dict[NodeId, str] = {}
        for ev in self.events:
            if ev.is_node_event() and ev.target in critical:
                last[ev.target] = ev.kind
        for u, kind in last.items():
            if kind == "node_down":
                raise FaultInjectionError(
                    f"fault schedule crashes node {u!r} with no recovery, but "
                    f"{protocol} requires it alive to reconverge"
                )

    # ------------------------------------------------------------------ #
    def bind(self, network) -> List["BoundFaultEvent"]:
        """Resolve node ids / endpoint pairs against ``network`` and validate.

        Returns the events as dense-index :class:`BoundFaultEvent` records
        ordered by (time, schedule order); unknown targets raise
        :class:`~repro.errors.FaultInjectionError`.
        """
        idx = network.indexed
        index_of = idx.index_of
        out_maps = network._out_maps
        bound: List[BoundFaultEvent] = []
        for ev in self.events:
            if ev.is_node_event():
                i = index_of.get(ev.target)
                if i is None:
                    raise FaultInjectionError(
                        f"fault schedule targets node {ev.target!r}, which is "
                        "not in the network"
                    )
                bound.append(BoundFaultEvent(ev.time, ev.kind, node=i))
            else:
                u, v = ev.target
                iu = index_of.get(u)
                entry = None if iu is None else out_maps[iu].get(v)
                if entry is None:
                    raise FaultInjectionError(
                        f"fault schedule targets edge {ev.target!r}, which is "
                        "not an edge of the network"
                    )
                bound.append(
                    BoundFaultEvent(ev.time, ev.kind, eid=entry[1], u=iu,
                                    v=index_of[v])
                )
        return bound

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultSchedule({len(self.events)} events, horizon={self.horizon})"


@dataclass
class BoundFaultEvent:
    """A :class:`FaultEvent` resolved to dense indices (scheduler-internal)."""

    time: int
    kind: str
    node: int = -1
    eid: int = -1
    u: int = -1
    v: int = -1


# --------------------------------------------------------------------------- #
# Seeded schedule generators (the Chord experiment menu)
# --------------------------------------------------------------------------- #
class FaultModel:
    """Deterministic generator of a :class:`FaultSchedule` for a network.

    Subclasses derive every victim and transition time from a seeded
    stateless hash of the construction parameters, mirroring the
    :class:`~repro.congest.scheduler.DelayModel` contract: the schedule is
    a pure function of ``(model, graph)``, never of call order.
    ``CongestNetwork.run`` accepts a model wherever it accepts a schedule
    and materialises it against the run's network snapshot.
    """

    def schedule(self, indexed) -> FaultSchedule:
        """The concrete :class:`FaultSchedule` for this graph snapshot."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


def _edge_list(indexed) -> List[Tuple[Any, Any]]:
    """The unique undirected edges of a CSR snapshot as id pairs (u, v)."""
    edges = []
    node_ids = indexed.node_ids
    indptr, indices = indexed.indptr, indexed.indices
    for i in range(indexed.num_nodes):
        for pos in range(indptr[i], indptr[i + 1]):
            j = indices[pos]
            if i < j:
                edges.append((node_ids[i], node_ids[j]))
    return edges


class MassFailure(FaultModel):
    """A correlated mass outage: a seeded fraction of elements crashes at
    once and recovers together — the ``exp_3_mass_failure`` scenario.

    Each node (``kind="node"``, default) or edge (``kind="edge"``) is
    independently selected with probability ``fraction`` by a stateless
    hash of ``(seed, position)``; every victim goes down at virtual time
    ``at`` and comes back at ``at + outage``.  All faults are transient,
    so the post-fault graph equals the original.
    """

    def __init__(self, fraction: float = 0.3, at: int = 8, outage: int = 8,
                 kind: str = "node", seed: int = 0) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise FaultInjectionError(
                f"MassFailure fraction must be in [0, 1], got {fraction}"
            )
        if int(at) < 1 or int(outage) < 1:
            raise FaultInjectionError(
                f"MassFailure needs at >= 1 and outage >= 1, got {at}, {outage}"
            )
        if kind not in ("node", "edge"):
            raise FaultInjectionError(
                f"MassFailure kind must be 'node' or 'edge', got {kind!r}"
            )
        self.fraction = float(fraction)
        self.at = int(at)
        self.outage = int(outage)
        self.kind = kind
        self.seed = int(seed)

    def schedule(self, indexed) -> FaultSchedule:
        threshold = int(self.fraction * (1 << 32))
        events: List[FaultEvent] = []
        if self.kind == "node":
            targets: Sequence[Any] = indexed.node_ids
        else:
            targets = _edge_list(indexed)
        for pos, target in enumerate(targets):
            if (_mix(self.seed, 0x5EED, pos) & 0xFFFFFFFF) < threshold:
                down = f"{self.kind}_down"
                up = f"{self.kind}_up"
                events.append(FaultEvent(self.at, down, target))
                events.append(FaultEvent(self.at + self.outage, up, target))
        return FaultSchedule(events)

    def __repr__(self) -> str:
        return (
            f"MassFailure({self.fraction}, at={self.at}, outage={self.outage}, "
            f"kind={self.kind!r}, seed={self.seed})"
        )


class Churn(FaultModel):
    """Steady node churn: one seeded victim crashes per period and restarts
    after ``outage`` — the ``exp_4_churn`` scenario.

    Cycle ``c`` crashes its victim at ``start + c * period``.  Victims are
    drawn by a stateless hash of ``(seed, c, attempt)``; a candidate whose
    down interval would overlap one of its own earlier intervals is
    deterministically re-drawn, so the schedule is always well-formed.
    """

    def __init__(self, cycles: int = 4, period: int = 6, outage: int = 3,
                 start: int = 4, seed: int = 0) -> None:
        if int(cycles) < 1 or int(period) < 1 or int(outage) < 1 or int(start) < 1:
            raise FaultInjectionError(
                "Churn needs cycles/period/outage/start all >= 1, got "
                f"{cycles}, {period}, {outage}, {start}"
            )
        self.cycles = int(cycles)
        self.period = int(period)
        self.outage = int(outage)
        self.start = int(start)
        self.seed = int(seed)

    def schedule(self, indexed) -> FaultSchedule:
        n = indexed.num_nodes
        node_ids = indexed.node_ids
        events: List[FaultEvent] = []
        busy_until: Dict[int, int] = {}  # node index -> last down-interval end
        for c in range(self.cycles):
            t = self.start + c * self.period
            victim = None
            for attempt in range(4 * n):
                cand = _mix(self.seed, 0xC4_12, c, attempt) % n
                if busy_until.get(cand, -1) < t:
                    victim = cand
                    break
            if victim is None:
                continue  # tiny graph, every node still down: skip this cycle
            busy_until[victim] = t + self.outage
            events.append(FaultEvent(t, "node_down", node_ids[victim]))
            events.append(FaultEvent(t + self.outage, "node_up", node_ids[victim]))
        return FaultSchedule(events)

    def __repr__(self) -> str:
        return (
            f"Churn(cycles={self.cycles}, period={self.period}, "
            f"outage={self.outage}, start={self.start}, seed={self.seed})"
        )


class LinkFlap(FaultModel):
    """A seeded subset of links flaps down/up periodically.

    Each edge is selected with probability ``fraction`` (stateless hash of
    ``(seed, edge position)``); a selected edge goes down at
    ``start + c * period`` and recovers ``outage`` time units later, for
    each of ``cycles`` flaps.  ``outage`` must be smaller than ``period``
    so consecutive flaps of one link never overlap.
    """

    def __init__(self, fraction: float = 0.2, cycles: int = 2, period: int = 8,
                 outage: int = 3, start: int = 4, seed: int = 0) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise FaultInjectionError(
                f"LinkFlap fraction must be in [0, 1], got {fraction}"
            )
        if int(outage) >= int(period):
            raise FaultInjectionError(
                f"LinkFlap needs outage < period so flaps cannot overlap, "
                f"got outage={outage}, period={period}"
            )
        if int(cycles) < 1 or int(outage) < 1 or int(start) < 1:
            raise FaultInjectionError(
                "LinkFlap needs cycles/outage/start all >= 1, got "
                f"{cycles}, {outage}, {start}"
            )
        self.fraction = float(fraction)
        self.cycles = int(cycles)
        self.period = int(period)
        self.outage = int(outage)
        self.start = int(start)
        self.seed = int(seed)

    def schedule(self, indexed) -> FaultSchedule:
        threshold = int(self.fraction * (1 << 32))
        events: List[FaultEvent] = []
        for pos, edge in enumerate(_edge_list(indexed)):
            if (_mix(self.seed, 0xF1A9, pos) & 0xFFFFFFFF) >= threshold:
                continue
            for c in range(self.cycles):
                t = self.start + c * self.period
                events.append(FaultEvent(t, "edge_down", edge))
                events.append(FaultEvent(t + self.outage, "edge_up", edge))
        return FaultSchedule(events)

    def __repr__(self) -> str:
        return (
            f"LinkFlap({self.fraction}, cycles={self.cycles}, "
            f"period={self.period}, outage={self.outage}, "
            f"start={self.start}, seed={self.seed})"
        )


# --------------------------------------------------------------------------- #
def resolve_fault_schedule(fault_schedule, indexed) -> FaultSchedule:
    """Materialise ``fault_schedule`` (a schedule or a model) for a snapshot.

    :class:`FaultSchedule` instances pass through unchanged; a
    :class:`FaultModel` is expanded against ``indexed``.  Anything else is
    a caller error.
    """
    if isinstance(fault_schedule, FaultSchedule):
        return fault_schedule
    if isinstance(fault_schedule, FaultModel):
        return fault_schedule.schedule(indexed)
    raise SimulationError(
        "fault_schedule must be a FaultSchedule or FaultModel instance, got "
        f"{type(fault_schedule)!r}"
    )
