"""Resumable per-cell result store.

One file per finished cell, named by the cell's content hash, written
atomically (temp file + ``os.replace`` via the hardened trajectory
writer) — so an interrupted sweep leaves only whole records behind and
a re-invoked sweep resumes by hash lookup.  Concurrent sweeps over
disjoint cells write disjoint files; concurrent writers of the *same*
cell each publish a complete record and the last replace wins, which is
safe because a cell's record is a pure function of its spec plus
machine-dependent timing.

Consolidation (``repro-bench export`` / :meth:`ResultStore.consolidate`)
mirrors the repo's optional-dependency discipline: a parquet table when
``pyarrow`` is importable, and a pure JSON-lines file (one canonical
record per line, sorted by cell hash) otherwise — same rows either way.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List, Optional, Tuple

from .trajectory import write_json_atomic

CELL_DIR = "cells"
RECORD_SUFFIX = ".json"


def parquet_available() -> bool:
    try:  # pragma: no cover - exercised only where pyarrow is installed
        import pyarrow  # noqa: F401
        import pyarrow.parquet  # noqa: F401
    except ImportError:
        return False
    return True


class ResultStore:
    """Directory of per-cell records keyed by cell hash."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        self.cell_dir = os.path.join(self.root, CELL_DIR)
        os.makedirs(self.cell_dir, exist_ok=True)

    # ------------------------------------------------------------------ #
    def _path(self, key: str) -> str:
        return os.path.join(self.cell_dir, key + RECORD_SUFFIX)

    def has(self, key: str) -> bool:
        return os.path.exists(self._path(key))

    def get(self, key: str) -> Optional[dict]:
        path = self._path(key)
        if not os.path.exists(path):
            return None
        with open(path) as fh:
            return json.load(fh)

    def put(self, key: str, record: dict) -> str:
        """Atomically publish one cell record; returns the file path."""
        path = self._path(key)
        write_json_atomic(path, record)
        return path

    def discard(self, key: str) -> bool:
        try:
            os.unlink(self._path(key))
        except FileNotFoundError:
            return False
        return True

    # ------------------------------------------------------------------ #
    def keys(self) -> List[str]:
        return sorted(
            name[: -len(RECORD_SUFFIX)]
            for name in os.listdir(self.cell_dir)
            if name.endswith(RECORD_SUFFIX)
        )

    def records(self) -> Iterator[Tuple[str, dict]]:
        """All ``(key, record)`` pairs in sorted key order."""
        for key in self.keys():
            record = self.get(key)
            if record is not None:
                yield key, record

    def __len__(self) -> int:
        return len(self.keys())

    # ------------------------------------------------------------------ #
    def consolidate(self, path: Optional[str] = None, fmt: str = "auto") -> str:
        """Write every record to one file; returns the path written.

        ``fmt="auto"`` picks parquet when pyarrow is importable and
        JSON-lines otherwise; ``"parquet"``/``"jsonl"`` force a format
        (parquet raises without pyarrow).
        """
        if fmt == "auto":
            fmt = "parquet" if parquet_available() else "jsonl"
        if fmt not in ("parquet", "jsonl"):
            raise ValueError(f"unknown consolidation format {fmt!r}")
        if path is None:
            path = os.path.join(self.root, "results." + fmt)
        rows = [record for _, record in self.records()]
        if fmt == "parquet":
            if not parquet_available():
                raise RuntimeError(
                    "consolidate(fmt='parquet') requires pyarrow; "
                    "use fmt='jsonl' on this host"
                )
            import pyarrow  # pragma: no cover - requires pyarrow
            import pyarrow.parquet  # pragma: no cover

            table = pyarrow.Table.from_pylist(rows)  # pragma: no cover
            pyarrow.parquet.write_table(table, path)  # pragma: no cover
        else:
            lines = [
                json.dumps(row, sort_keys=True, separators=(",", ":"))
                for row in rows
            ]
            tmp_payload = "\n".join(lines)
            # Publish atomically like every other store write.
            _write_text_atomic(path, tmp_payload + ("\n" if lines else ""))
        return path

    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, int]:
        by_protocol: Dict[str, int] = {}
        for _, record in self.records():
            protocol = record.get("spec", {}).get("protocol", "?")
            by_protocol[protocol] = by_protocol.get(protocol, 0) + 1
        return by_protocol


def _write_text_atomic(path: str, text: str) -> None:
    import tempfile

    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix="." + os.path.basename(path) + ".tmp-"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
