"""Hardened merge-writer for the ``BENCH_*.json`` trajectory files.

Every benchmark module records its cases into one JSON trajectory
(``BENCH_engine.json``, ``BENCH_serving.json``, ...) so speedups are
tracked across PRs.  The writer merges per case: re-running one case
updates its entry and leaves the rest of the file alone.

The merge is a read-modify-write of a file that accumulates history
across every PR, so three failure modes matter and are each closed
here:

* **Torn writes.**  The merged record is serialized to a temporary file
  in the same directory, flushed and fsynced, then moved over the
  target with :func:`os.replace` — readers (and a crash mid-dump) see
  either the old file or the new file, never a truncated one.
* **Corrupt trajectories.**  An unparsable file is *never* silently
  reset to ``{}`` (which would destroy the whole cross-PR trajectory on
  the next write).  It is moved aside to ``<name>.corrupt-<n>`` and a
  :class:`TrajectoryCorruptWarning` names the backup; the merge then
  starts a fresh record.  An ``OSError`` while reading (permissions,
  I/O) is re-raised: overwriting a file we could not read would discard
  history we never saw.
* **Concurrent merges.**  Two benchmark processes (the CI jobs, or
  parallel local runs) racing the read-modify-write would lose each
  other's cases.  The whole merge holds an exclusive ``fcntl`` lock on
  a ``<name>.lock`` sidecar.  On platforms without :mod:`fcntl`
  (Windows) the lock degrades to a no-op — concurrent merges are then
  last-writer-wins per *file*, but single-process merges stay atomic.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from typing import Optional

try:  # pragma: no cover - absent only on non-POSIX platforms
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None


class TrajectoryCorruptWarning(UserWarning):
    """A trajectory file was unparsable and has been backed up aside."""


def _lock_path(json_path: str) -> str:
    return json_path + ".lock"


def _acquire_lock(json_path: str):
    """Take an exclusive advisory lock guarding the merge; None without fcntl."""
    if fcntl is None:
        return None
    fd = os.open(_lock_path(json_path), os.O_CREAT | os.O_RDWR, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
    except OSError:  # pragma: no cover - exotic filesystems without flock
        os.close(fd)
        return None
    return fd

def _release_lock(fd) -> None:
    if fd is None:
        return
    fcntl.flock(fd, fcntl.LOCK_UN)
    os.close(fd)


def backup_corrupt_file(path: str) -> str:
    """Move an unparsable file aside to the next free ``<path>.corrupt-<n>``."""
    n = 0
    while True:
        backup = f"{path}.corrupt-{n}"
        if not os.path.exists(backup):
            break
        n += 1
    os.replace(path, backup)
    return backup


def load_trajectory(json_path: str) -> dict:
    """Read a trajectory record, backing a corrupt file up instead of erasing it."""
    if not os.path.exists(json_path):
        return {}
    with open(json_path) as fh:
        text = fh.read()
    try:
        record = json.loads(text)
    except ValueError:
        backup = backup_corrupt_file(json_path)
        warnings.warn(
            f"trajectory file {json_path!r} is not valid JSON; "
            f"backed it up to {backup!r} and starting a fresh record",
            TrajectoryCorruptWarning,
            stacklevel=2,
        )
        return {}
    if not isinstance(record, dict):
        backup = backup_corrupt_file(json_path)
        warnings.warn(
            f"trajectory file {json_path!r} does not hold a JSON object; "
            f"backed it up to {backup!r} and starting a fresh record",
            TrajectoryCorruptWarning,
            stacklevel=2,
        )
        return {}
    return record


def write_json_atomic(json_path: str, record) -> None:
    """Serialize ``record`` and atomically replace ``json_path`` with it."""
    directory = os.path.dirname(os.path.abspath(json_path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix="." + os.path.basename(json_path) + ".tmp-"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, json_path)
    except BaseException:
        # A failed or interrupted dump leaves the target untouched; drop
        # the half-written temp file rather than littering the directory.
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def merge_trajectory_record(
    json_path: str, case: str, scale: str, tiers: dict,
    extra: Optional[dict] = None,
) -> None:
    """Merge one case's per-tier record into ``json_path``.

    The read-modify-write is guarded by an exclusive file lock (see the
    module docstring) and the final write is atomic, so concurrent
    benchmark processes merge without losing each other's cases and a
    crash mid-write cannot truncate the trajectory.
    """
    lock = _acquire_lock(json_path)
    try:
        record = load_trajectory(json_path)
        entry = {"scale": scale, "tiers": tiers}
        if extra:
            entry.update(extra)
        record[case] = entry
        write_json_atomic(json_path, record)
    finally:
        _release_lock(lock)
