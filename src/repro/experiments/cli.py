"""``repro-bench`` — the unified experiment-matrix CLI.

Four subcommands over the matrix/store/gates machinery:

* ``run``    — execute the selected (protocol x engine x family x seed)
  cells at one ``--scale``, persisting each finished cell atomically to
  the store.  Interrupted sweeps resume on re-invocation (finished
  cells are found by content hash and skipped); ``--rerun`` forces
  selected cells to execute again, and ``--max-cells`` stops after N
  executed cells (the deterministic interrupt the CI smoke step uses).
* ``gate``   — check the committed ``BENCH_*.json`` trajectories (and
  optionally a fresh store) against the regression gates; exit 1 on any
  violation.
* ``export`` — fold store records into the ``BENCH_*.json``
  trajectories through the hardened merge-writer, and optionally write
  a consolidated parquet/JSON-lines table.
* ``list``   — show the available axis values and the store contents.

The command surface is typer-based when :mod:`typer` is importable
(PROBE's ``benchmark/runner.py`` idiom) and falls back to an argparse
parser with the identical surface otherwise — the same dependency
discipline as the numpy/numba tiers.  Both frontends call the same
``cmd_*`` functions.  Invoke as ``python -m repro.experiments ...`` or
via ``bin/repro-bench``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .matrix import (
    DEFAULT_ENGINES,
    DEFAULT_FAMILIES,
    DEFAULT_PROTOCOLS,
    ENGINES,
    FAMILIES,
    SCALES,
    make_matrix,
)
from .store import ResultStore

DEFAULT_STORE = ".bench-matrix"
DEFAULT_SEEDS = (12345,)

try:  # pragma: no cover - typer is optional and absent on the CI image
    import typer
except ImportError:
    typer = None


def _echo(line: str) -> None:
    print(line, flush=True)


# --------------------------------------------------------------------------- #
# command implementations (shared by both frontends)
# --------------------------------------------------------------------------- #
def cmd_run(
    protocols: Sequence[str],
    engines: Sequence[str],
    families: Sequence[str],
    scale: str,
    seeds: Sequence[int],
    store_path: str,
    rerun: bool = False,
    max_cells: Optional[int] = None,
    keep_going: bool = False,
    list_only: bool = False,
    quiet: bool = False,
) -> int:
    from .runner import run_matrix

    matrix = make_matrix(
        protocols=list(protocols) or None,
        engines=list(engines) or None,
        families=list(families) or None,
        scale=scale,
        seeds=tuple(seeds) or DEFAULT_SEEDS,
    )
    cells = matrix.cells()
    if not cells:
        _echo("matrix is empty: no (protocol, engine, family) combination is valid")
        return 2
    if list_only:
        for cell in cells:
            _echo(f"{cell.cell_hash()}  {cell.label()}")
        _echo(f"{len(cells)} cell(s)")
        return 0
    store = ResultStore(store_path)
    log = None if quiet else _echo
    summary = run_matrix(
        cells,
        store,
        rerun=rerun,
        max_cells=max_cells,
        keep_going=keep_going,
        log=log,
    )
    _echo(f"matrix {scale}: {len(cells)} cell(s) -> {summary.line()}")
    for failure in summary.failures:
        _echo(f"  failed: {failure}")
    return 1 if summary.failed else 0


def cmd_gate(
    engine_trajectory: Optional[str],
    serving_trajectory: Optional[str],
    store_path: Optional[str],
    tolerance: float,
) -> int:
    from .gates import run_gates

    store = None
    if store_path:
        store = ResultStore(store_path)
    report = run_gates(
        engine_path=engine_trajectory,
        serving_path=serving_trajectory,
        store=store,
        tolerance=tolerance,
    )
    _echo(report.render())
    return 0 if report.ok else 1


def cmd_export(
    store_path: str,
    engine_out: str,
    serving_out: str,
    consolidated: Optional[str] = None,
    fmt: str = "auto",
) -> int:
    from .export import export_store

    store = ResultStore(store_path)
    if not len(store):
        _echo(f"store {store_path!r} holds no cell records; nothing to export")
        return 2
    written = export_store(store, engine_out=engine_out, serving_out=serving_out)
    _echo(
        f"exported {written['engine']} engine case(s) -> {engine_out}, "
        f"{written['serving']} serving case(s) -> {serving_out}"
    )
    if consolidated is not None:
        path = store.consolidate(consolidated, fmt=fmt)
        _echo(f"consolidated {len(store)} record(s) -> {path}")
    return 0


def cmd_list(store_path: Optional[str]) -> int:
    from .protocols import REGISTRY

    _echo(f"scales:    {' '.join(SCALES)}")
    _echo(f"engines:   {' '.join(ENGINES)} (serving: scalar packed; structural: -)")
    _echo(f"families:  {' '.join(FAMILIES)}")
    _echo("protocols:")
    for name in sorted(REGISTRY):
        adapter = REGISTRY[name]
        _echo(
            f"  {name:18s} engines={','.join(adapter.engines)} "
            f"families={','.join(adapter.families)}"
        )
    _echo(
        f"defaults:  protocols={','.join(DEFAULT_PROTOCOLS)} "
        f"engines={','.join(DEFAULT_ENGINES)} families={','.join(DEFAULT_FAMILIES)}"
    )
    if store_path:
        store = ResultStore(store_path)
        _echo(f"store {store_path!r}: {len(store)} cell record(s)")
        for protocol, count in sorted(store.summary().items()):
            _echo(f"  {protocol:18s} {count}")
    return 0


# --------------------------------------------------------------------------- #
# argparse frontend (always available)
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Unified resumable experiment-matrix runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run matrix cells, resuming finished ones")
    run_p.add_argument(
        "--protocol", "-p", action="append", default=[],
        help="protocol axis value (repeatable; default: the smoke defaults)",
    )
    run_p.add_argument(
        "--engine", "-e", action="append", default=[],
        help="engine axis value (repeatable)",
    )
    run_p.add_argument(
        "--family", "-f", action="append", default=[],
        help="graph family axis value (repeatable)",
    )
    run_p.add_argument("--scale", choices=SCALES, default="smoke")
    run_p.add_argument(
        "--seed", action="append", type=int, default=[],
        help="seed axis value (repeatable; default 12345)",
    )
    run_p.add_argument("--store", default=DEFAULT_STORE, help="cell store directory")
    run_p.add_argument(
        "--rerun", action="store_true",
        help="execute selected cells even when a record exists",
    )
    run_p.add_argument(
        "--max-cells", type=int, default=None,
        help="stop after N executed cells (deterministic interrupt)",
    )
    run_p.add_argument(
        "--keep-going", action="store_true",
        help="record per-cell failures and continue",
    )
    run_p.add_argument(
        "--list", action="store_true", dest="list_only",
        help="print the selected cells (hash + label) and exit",
    )
    run_p.add_argument("--quiet", action="store_true")

    gate_p = sub.add_parser("gate", help="check trajectories against the gates")
    gate_p.add_argument("--engine-trajectory", default="BENCH_engine.json")
    gate_p.add_argument("--serving-trajectory", default="BENCH_serving.json")
    gate_p.add_argument(
        "--skip-engine", action="store_true", help="skip the engine trajectory"
    )
    gate_p.add_argument(
        "--skip-serving", action="store_true", help="skip the serving trajectory"
    )
    gate_p.add_argument(
        "--store", default=None,
        help="also gate fresh records in this cell store",
    )
    gate_p.add_argument("--tolerance", type=float, default=0.1)

    export_p = sub.add_parser(
        "export", help="fold store records into the BENCH_*.json trajectories"
    )
    export_p.add_argument("--store", default=DEFAULT_STORE)
    export_p.add_argument("--engine-out", default="BENCH_engine.json")
    export_p.add_argument("--serving-out", default="BENCH_serving.json")
    export_p.add_argument(
        "--consolidated", default=None,
        help="also write a consolidated table to this path",
    )
    export_p.add_argument(
        "--format", dest="fmt", choices=("auto", "parquet", "jsonl"), default="auto"
    )

    list_p = sub.add_parser("list", help="show axis values and store contents")
    list_p.add_argument("--store", default=None)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return cmd_run(
            protocols=args.protocol,
            engines=args.engine,
            families=args.family,
            scale=args.scale,
            seeds=args.seed,
            store_path=args.store,
            rerun=args.rerun,
            max_cells=args.max_cells,
            keep_going=args.keep_going,
            list_only=args.list_only,
            quiet=args.quiet,
        )
    if args.command == "gate":
        return cmd_gate(
            engine_trajectory=None if args.skip_engine else args.engine_trajectory,
            serving_trajectory=(
                None if args.skip_serving else args.serving_trajectory
            ),
            store_path=args.store,
            tolerance=args.tolerance,
        )
    if args.command == "export":
        return cmd_export(
            store_path=args.store,
            engine_out=args.engine_out,
            serving_out=args.serving_out,
            consolidated=args.consolidated,
            fmt=args.fmt,
        )
    if args.command == "list":
        return cmd_list(store_path=args.store)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


# --------------------------------------------------------------------------- #
# typer frontend (used when typer is importable)
# --------------------------------------------------------------------------- #
if typer is not None:  # pragma: no cover - typer absent on the CI image
    app = typer.Typer(help="Unified resumable experiment-matrix runner")

    @app.command("run")
    def _typer_run(
        protocol: List[str] = typer.Option([], "--protocol", "-p"),
        engine: List[str] = typer.Option([], "--engine", "-e"),
        family: List[str] = typer.Option([], "--family", "-f"),
        scale: str = typer.Option("smoke"),
        seed: List[int] = typer.Option([], "--seed"),
        store: str = typer.Option(DEFAULT_STORE),
        rerun: bool = typer.Option(False, "--rerun"),
        max_cells: Optional[int] = typer.Option(None, "--max-cells"),
        keep_going: bool = typer.Option(False, "--keep-going"),
        list_only: bool = typer.Option(False, "--list"),
        quiet: bool = typer.Option(False, "--quiet"),
    ) -> None:
        raise typer.Exit(
            cmd_run(
                protocols=protocol, engines=engine, families=family,
                scale=scale, seeds=seed, store_path=store, rerun=rerun,
                max_cells=max_cells, keep_going=keep_going,
                list_only=list_only, quiet=quiet,
            )
        )

    @app.command("gate")
    def _typer_gate(
        engine_trajectory: str = typer.Option("BENCH_engine.json"),
        serving_trajectory: str = typer.Option("BENCH_serving.json"),
        skip_engine: bool = typer.Option(False, "--skip-engine"),
        skip_serving: bool = typer.Option(False, "--skip-serving"),
        store: Optional[str] = typer.Option(None),
        tolerance: float = typer.Option(0.1),
    ) -> None:
        raise typer.Exit(
            cmd_gate(
                engine_trajectory=None if skip_engine else engine_trajectory,
                serving_trajectory=None if skip_serving else serving_trajectory,
                store_path=store,
                tolerance=tolerance,
            )
        )

    @app.command("export")
    def _typer_export(
        store: str = typer.Option(DEFAULT_STORE),
        engine_out: str = typer.Option("BENCH_engine.json"),
        serving_out: str = typer.Option("BENCH_serving.json"),
        consolidated: Optional[str] = typer.Option(None),
        fmt: str = typer.Option("auto", "--format"),
    ) -> None:
        raise typer.Exit(
            cmd_export(
                store_path=store, engine_out=engine_out,
                serving_out=serving_out, consolidated=consolidated, fmt=fmt,
            )
        )

    @app.command("list")
    def _typer_list(store: Optional[str] = typer.Option(None)) -> None:
        raise typer.Exit(cmd_list(store_path=store))

    def cli_entry() -> int:  # pragma: no cover
        app()
        return 0

else:
    app = None

    def cli_entry() -> int:
        return main()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(cli_entry())
