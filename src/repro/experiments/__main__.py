"""``python -m repro.experiments`` — the ``repro-bench`` entry point."""

import sys

from .cli import cli_entry

if __name__ == "__main__":
    sys.exit(cli_entry())
