"""Resumable matrix runner: execute cells, persist records, skip the done.

The runner is deliberately dumb about *what* a cell computes — that is
the protocol adapter's job — and strict about *bookkeeping*: every
finished cell becomes one atomically-published record in the
:class:`~repro.experiments.store.ResultStore`, keyed by the cell spec's
content hash, and a re-invoked sweep consults the store before running
anything.  Interrupting a sweep (Ctrl-C, a crashed host, or the
``max_cells`` cap the CI smoke step uses as a deterministic interrupt)
therefore loses at most the cell in flight; the next invocation re-runs
only the missing cells and the final store is identical to an
uninterrupted sweep.

Timing is injected (``timer=``) so tests can pin a deterministic clock
and assert byte-identical stores across interrupted/uninterrupted runs.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from .matrix import SCHEMA_VERSION, CellSpec
from .protocols import REGISTRY
from .store import ResultStore


@dataclass
class RunSummary:
    """Outcome of one :func:`run_matrix` invocation."""

    executed: int = 0
    cached: int = 0
    failed: int = 0
    interrupted: bool = False
    failures: List[str] = field(default_factory=list)

    def line(self) -> str:
        parts = [f"executed={self.executed}", f"cached={self.cached}"]
        if self.failed:
            parts.append(f"failed={self.failed}")
        if self.interrupted:
            parts.append("interrupted (resume by re-invoking the same command)")
        return " ".join(parts)


def execute_cell(cell: CellSpec, timer: Callable[[], float] = time.perf_counter) -> dict:
    """Run one cell through its protocol adapter and shape the record."""
    adapter = REGISTRY.get(cell.protocol)
    if adapter is None:
        raise KeyError(f"no protocol adapter registered for {cell.protocol!r}")
    t0 = timer()
    result = adapter.run(cell)
    seconds = max(timer() - t0, 0.0)
    timing = {"seconds": round(seconds, 6)}
    messages = result.get("messages")
    if messages:
        timing["msgs_per_sec"] = round(messages / max(seconds, 1e-9), 1)
    pairs = result.get("pairs")
    if pairs:
        timing["qps"] = round(pairs / max(seconds, 1e-9), 1)
    return {
        "schema": SCHEMA_VERSION,
        "hash": cell.cell_hash(),
        "spec": cell.to_dict(),
        "result": result,
        "timing": timing,
    }


def run_matrix(
    cells: Sequence[CellSpec],
    store: ResultStore,
    rerun: bool = False,
    max_cells: Optional[int] = None,
    keep_going: bool = False,
    timer: Callable[[], float] = time.perf_counter,
    log: Optional[Callable[[str], None]] = None,
) -> RunSummary:
    """Run every cell not already in ``store``; returns a :class:`RunSummary`.

    ``rerun`` forces selected cells to execute even when a record exists.
    ``max_cells`` stops after that many *executed* cells (cached skips are
    free) and marks the summary interrupted — the deterministic stand-in
    for a killed sweep.  ``keep_going`` records per-cell failures and
    continues instead of raising on the first one.
    """
    say = log or (lambda _line: None)
    summary = RunSummary()
    for cell in cells:
        key = cell.cell_hash()
        if not rerun and store.has(key):
            summary.cached += 1
            say(f"cached   {key} {cell.label()}")
            continue
        if max_cells is not None and summary.executed >= max_cells:
            summary.interrupted = True
            say(f"stopping after {summary.executed} cells (max-cells cap)")
            break
        try:
            record = execute_cell(cell, timer=timer)
        except KeyboardInterrupt:
            summary.interrupted = True
            say("interrupted; finished cells are persisted — re-invoke to resume")
            raise
        except Exception as exc:
            summary.failed += 1
            summary.failures.append(f"{cell.label()}: {exc!r}")
            if not keep_going:
                raise
            say(f"FAILED   {key} {cell.label()}: {exc!r}")
            traceback.print_exc()
            continue
        store.put(key, record)
        summary.executed += 1
        say(
            f"ran      {key} {cell.label()} "
            f"({record['timing']['seconds']:.3f}s)"
        )
    return summary
