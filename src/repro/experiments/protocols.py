"""Protocol adapters: one callable per matrix protocol axis value.

Each adapter maps a :class:`~repro.experiments.matrix.CellSpec` onto an
existing entry point — the :meth:`CongestNetwork.run` helpers for the
engine-tier protocols, the packed/scalar label decoders for the serving
protocol, and the ``repro.analysis.experiments`` runners (E1–E9) for
the structural protocols — and returns one flat *result dict* of
deterministic fields (sizes, rounds, message/word ledger, an
``output_digest`` over the protocol outputs).  Wall-clock timing is
measured by the runner around the adapter, not inside it, so the
persisted record cleanly separates reproducible facts from
machine-dependent ones.

Adapters declare which engine-axis and family-axis values they support;
the matrix cross product is filtered accordingly (see
:meth:`Matrix.cells`).  Engine-tier adapters request the cell's engine
through the normal fallback ladder and record both the requested and
the actually-selected tier, so a no-numpy host produces honest records
instead of errors.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from .matrix import ENGINES, STRUCTURAL_ENGINE, CellSpec, family_size


def output_digest(payload) -> str:
    """Deterministic SHA-256 digest of a JSON-serializable output value.

    Node ids may be tuples (grids) and distances may be ``inf``; both are
    canonicalized via ``default=str`` / non-strict float handling, which
    is stable across runs and processes for the types the protocols
    produce.
    """
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class ProtocolAdapter:
    """A named protocol with its supported axis values."""

    name: str
    run: Callable[[CellSpec], dict]
    engines: Tuple[str, ...]
    families: Tuple[str, ...]


REGISTRY: Dict[str, ProtocolAdapter] = {}


def register_protocol(name: str, engines: Tuple[str, ...], families: Tuple[str, ...]):
    def deco(fn):
        REGISTRY[name] = ProtocolAdapter(
            name=name, run=fn, engines=engines, families=families
        )
        return fn

    return deco


# --------------------------------------------------------------------------- #
# shared builders
# --------------------------------------------------------------------------- #
def build_family_graph(family: str, scale: str, seed: int):
    """The undirected instance of one (family, scale, seed) axis point."""
    from repro.graphs import generators

    n = family_size(family, scale)
    if family == "path":
        return generators.path_graph(n)
    if family == "dense":
        return generators.complete_graph(n)
    if family == "grid":
        return generators.grid_graph(n, n)
    if family == "ktree":
        return generators.partial_k_tree(n, 3, seed=seed)
    if family == "tree":
        return generators.random_tree(n, seed=seed)
    raise KeyError(f"family {family!r} has no graph builder")


def _directed_instance(family: str, scale: str, seed: int):
    from repro.graphs import generators

    graph = build_family_graph(family, scale, seed)
    return generators.to_directed_instance(
        graph, weight_range=(1, 10), orientation="both", seed=seed
    )


def _root(graph):
    return min(graph.nodes())


def _engine_kwargs(cell: CellSpec) -> dict:
    """Per-engine keyword arguments for the CONGEST entry points."""
    kwargs: dict = {"engine": cell.engine}
    if cell.engine == "async":
        from repro.congest.scheduler import UnitDelay

        kwargs["delay_model"] = UnitDelay()
    if cell.engine == "sharded":
        kwargs["num_shards"] = 2
    return kwargs


def _sim_fields(cell: CellSpec, sim) -> dict:
    """The ledger fields every CONGEST cell shares."""
    out = {
        "engine_requested": cell.engine,
        "engine_selected": sim.engine,
        "rounds": sim.rounds,
        "messages": sim.messages_sent,
        "words": sim.words_sent,
        "max_words_per_edge_round": sim.max_words_per_edge_round,
    }
    if cell.engine == "async" and sim.engine == "async":
        out["virtual_time"] = sim.virtual_time
    return out


def _run_quiet(fn):
    """Run an entry point, capturing engine-fallback warnings as data."""
    from repro.congest.engine import EngineFallbackWarning

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", EngineFallbackWarning)
        result = fn()
    fallbacks = [
        str(w.message) for w in caught if issubclass(w.category, EngineFallbackWarning)
    ]
    return result, fallbacks


CONGEST_FAMILIES = ("path", "dense", "grid", "ktree", "tree")


# --------------------------------------------------------------------------- #
# engine-tier protocols
# --------------------------------------------------------------------------- #
@register_protocol("bellman_ford", engines=ENGINES, families=CONGEST_FAMILIES)
def run_bellman_ford_cell(cell: CellSpec) -> dict:
    from repro.congest.bellman_ford import distributed_bellman_ford

    instance = _directed_instance(cell.family, cell.scale, cell.seed)
    source = _root(instance)
    result, fallbacks = _run_quiet(
        lambda: distributed_bellman_ford(instance, source, **_engine_kwargs(cell))
    )
    record = _sim_fields(cell, result.simulation)
    record.update(
        n=instance.num_nodes(),
        m=instance.num_edges(),
        output_digest=output_digest(
            {str(v): result.distances[v] for v in result.distances}
        ),
    )
    if fallbacks:
        record["fallbacks"] = fallbacks
    return record


@register_protocol("bfs_tree", engines=ENGINES, families=CONGEST_FAMILIES)
def run_bfs_tree_cell(cell: CellSpec) -> dict:
    from repro.congest.network import CongestNetwork
    from repro.congest.primitives import build_bfs_tree

    graph = build_family_graph(cell.family, cell.scale, cell.seed)
    network = CongestNetwork(graph)
    root = _root(graph)
    (parent, depth, sim), fallbacks = _run_quiet(
        lambda: build_bfs_tree(network, root, **_engine_kwargs(cell))
    )
    record = _sim_fields(cell, sim)
    record.update(
        n=graph.num_nodes(),
        m=graph.num_edges(),
        output_digest=output_digest({str(v): depth[v] for v in depth}),
    )
    if fallbacks:
        record["fallbacks"] = fallbacks
    return record


@register_protocol("broadcast", engines=ENGINES, families=CONGEST_FAMILIES)
def run_broadcast_cell(cell: CellSpec) -> dict:
    from repro.congest.network import CongestNetwork
    from repro.congest.primitives import broadcast

    graph = build_family_graph(cell.family, cell.scale, cell.seed)
    network = CongestNetwork(graph)
    root = _root(graph)
    kwargs = _engine_kwargs(cell)
    kwargs.pop("num_shards", None)  # broadcast has no sharded kernel knob
    (received, sim), fallbacks = _run_quiet(
        lambda: broadcast(network, root, cell.seed, **kwargs)
    )
    record = _sim_fields(cell, sim)
    record.update(
        n=graph.num_nodes(),
        m=graph.num_edges(),
        output_digest=output_digest({str(v): received[v] for v in received}),
    )
    if fallbacks:
        record["fallbacks"] = fallbacks
    return record


@register_protocol("leader_election", engines=ENGINES, families=CONGEST_FAMILIES)
def run_leader_election_cell(cell: CellSpec) -> dict:
    from repro.congest.network import CongestNetwork
    from repro.congest.primitives import elect_leader

    graph = build_family_graph(cell.family, cell.scale, cell.seed)
    network = CongestNetwork(graph)
    (leader, sim), fallbacks = _run_quiet(
        lambda: elect_leader(network, **_engine_kwargs(cell))
    )
    record = _sim_fields(cell, sim)
    record.update(
        n=graph.num_nodes(),
        m=graph.num_edges(),
        output_digest=output_digest(str(leader)),
    )
    if fallbacks:
        record["fallbacks"] = fallbacks
    return record


@register_protocol("convergecast", engines=ENGINES, families=CONGEST_FAMILIES)
def run_convergecast_cell(cell: CellSpec) -> dict:
    from repro.congest.network import CongestNetwork
    from repro.congest.primitives import build_bfs_tree, convergecast_sum

    graph = build_family_graph(cell.family, cell.scale, cell.seed)
    network = CongestNetwork(graph)
    root = _root(graph)
    parent, _, _ = build_bfs_tree(network, root, engine="fast")
    values = {v: i + 1 for i, v in enumerate(sorted(graph.nodes(), key=str))}
    (total, sim), fallbacks = _run_quiet(
        lambda: convergecast_sum(network, parent, values, **_engine_kwargs(cell))
    )
    record = _sim_fields(cell, sim)
    record.update(
        n=graph.num_nodes(),
        m=graph.num_edges(),
        output_digest=output_digest(total),
    )
    if fallbacks:
        record["fallbacks"] = fallbacks
    return record


# --------------------------------------------------------------------------- #
# serving protocol — the engine axis selects the decode backend
# --------------------------------------------------------------------------- #
SERVING_QUERY_COUNTS = {"smoke": 400, "small": 2000, "full": 20000}


@register_protocol("serving_query", engines=("scalar", "packed"), families=("ktree", "grid"))
def run_serving_query_cell(cell: CellSpec) -> dict:
    """Label-decode throughput: scalar ``decode_distance`` vs the packed batch kernel."""
    import random

    from repro.labeling.construction import build_distance_labeling
    from repro.labeling.labels import decode_distance

    instance = _directed_instance(cell.family, cell.scale, cell.seed)
    labeling = build_distance_labeling(instance).labeling
    nodes = sorted(instance.nodes(), key=str)
    rng = random.Random(cell.seed * 7919 + 3)
    pairs = SERVING_QUERY_COUNTS[cell.scale]
    us = [rng.choice(nodes) for _ in range(pairs)]
    vs = [rng.choice(nodes) for _ in range(pairs)]
    if cell.engine == "packed":
        from repro.labeling.packed import PackedLabeling

        packed = PackedLabeling.from_labeling(labeling)
        distances = [float(d) for d in packed.query(us, vs)]
        backend = packed.stats()["backend"]
    else:
        distances = [
            float(decode_distance(labeling.label(u), labeling.label(v)))
            for u, v in zip(us, vs)
        ]
        backend = "scalar"
    return {
        "n": instance.num_nodes(),
        "m": instance.num_edges(),
        "engine_requested": cell.engine,
        "engine_selected": cell.engine,
        "backend": backend,
        "pairs": pairs,
        "label_entries": labeling.total_entries(),
        "output_digest": output_digest(distances),
    }


# --------------------------------------------------------------------------- #
# structural protocols (engine-independent; wrap the E1–E9 runners)
# --------------------------------------------------------------------------- #
def _table_record(cell: CellSpec, table) -> dict:
    rows = [dict(sorted(r.values.items())) for r in table]
    return {
        "engine_requested": STRUCTURAL_ENGINE,
        "engine_selected": STRUCTURAL_ENGINE,
        "rows": len(rows),
        "columns": list(table.columns),
        "output_digest": output_digest(rows),
    }


def _ktree_workload(cell: CellSpec, k: int = 3):
    from repro.analysis.workloads import workload

    n = family_size(cell.family, cell.scale)
    return workload(f"pkt({n},{k})", "partial_k_tree", seed=cell.seed, n=n, k=k)


STRUCTURAL = (STRUCTURAL_ENGINE,)


@register_protocol("separator", engines=STRUCTURAL, families=("ktree",))
def run_separator_cell(cell: CellSpec) -> dict:
    from repro.analysis.experiments import run_separator_experiment

    table = run_separator_experiment([_ktree_workload(cell)], seed=cell.seed)
    return _table_record(cell, table)


@register_protocol("tree_decomposition", engines=STRUCTURAL, families=("ktree",))
def run_tree_decomposition_cell(cell: CellSpec) -> dict:
    from repro.analysis.experiments import run_decomposition_experiment

    table = run_decomposition_experiment([_ktree_workload(cell)], seed=cell.seed)
    return _table_record(cell, table)


@register_protocol("labeling_build", engines=STRUCTURAL, families=("ktree",))
def run_labeling_build_cell(cell: CellSpec) -> dict:
    from repro.analysis.experiments import run_labeling_experiment

    table = run_labeling_experiment(
        [_ktree_workload(cell)], seed=cell.seed, check_pairs=50
    )
    return _table_record(cell, table)


@register_protocol("sssp_scaling", engines=STRUCTURAL, families=("ktree",))
def run_sssp_scaling_cell(cell: CellSpec) -> dict:
    from repro.analysis.experiments import run_sssp_scaling_experiment

    n = family_size(cell.family, cell.scale)
    table = run_sssp_scaling_experiment([max(16, n // 2), n], k=3, seed=cell.seed)
    return _table_record(cell, table)


@register_protocol("stateful_walks", engines=STRUCTURAL, families=("ktree",))
def run_stateful_walks_cell(cell: CellSpec) -> dict:
    from repro.analysis.experiments import run_stateful_walk_experiment

    n = family_size(cell.family, cell.scale)
    table = run_stateful_walk_experiment(
        n=n, k=3, palettes=(2, 3), seed=cell.seed
    )
    return _table_record(cell, table)


@register_protocol("matching", engines=STRUCTURAL, families=("bipartite",))
def run_matching_cell(cell: CellSpec) -> dict:
    from repro.analysis.experiments import run_matching_experiment
    from repro.analysis.workloads import workload

    n = family_size(cell.family, cell.scale)
    spec = workload(
        f"banded({n})", "banded_bipartite", seed=cell.seed, left=n, right=n, band=3
    )
    table = run_matching_experiment([spec], seed=cell.seed)
    return _table_record(cell, table)


@register_protocol("girth", engines=STRUCTURAL, families=("chords",))
def run_girth_cell(cell: CellSpec) -> dict:
    from repro.analysis.experiments import run_girth_experiment
    from repro.analysis.workloads import workload

    n = family_size(cell.family, cell.scale)
    directed = [
        workload(f"chords({n},5)", "cycle_chords", seed=cell.seed, n=n, chords=5)
    ]
    undirected = [
        workload(
            f"chords({max(12, n // 2)},3)",
            "cycle_chords",
            seed=cell.seed + 1,
            n=max(12, n // 2),
            chords=3,
        )
    ]
    table = run_girth_experiment(
        directed, undirected, seed=cell.seed, trials_per_scale=4
    )
    return _table_record(cell, table)


@register_protocol("partwise", engines=STRUCTURAL, families=("ktree",))
def run_partwise_cell(cell: CellSpec) -> dict:
    from repro.analysis.experiments import run_partwise_experiment

    n = family_size(cell.family, cell.scale)
    table = run_partwise_experiment([n], k=3, seed=cell.seed)
    return _table_record(cell, table)


@register_protocol("crossover", engines=STRUCTURAL, families=("ktree",))
def run_crossover_cell(cell: CellSpec) -> dict:
    from repro.analysis.experiments import run_crossover_experiment

    n = family_size(cell.family, cell.scale)
    table = run_crossover_experiment([max(16, n // 2), n], k=3, seed=cell.seed)
    return _table_record(cell, table)
