"""Declarative experiment matrix: cells, scales and content hashing.

The unified runner sweeps a cross product of five axes —
``(engine tier x protocol/primitive x graph family x scale x seed)`` —
and persists one record per *cell*.  A cell is identified by the
content hash of its spec (:meth:`CellSpec.cell_hash`), so a re-invoked
sweep resumes exactly where it left off: finished cells are found in
the store by hash and skipped, and changing any axis value (or the
record schema version) changes the hash and forces a fresh run.

Scales are named presets (``smoke`` < ``small`` < ``full``) mapping
each graph family to an instance size, so "the CI smoke matrix" and
"the paper-scale matrix" are the same spec at a different ``--scale``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

#: Bump when the persisted record layout changes incompatibly: the hash
#: covers it, so old-store cells stop matching and are re-run rather
#: than misread.
SCHEMA_VERSION = 1

SCALES = ("smoke", "small", "full")

#: Graph-family instance sizes per scale.  ``path``/``dense`` mirror the
#: engine shoot-out benches (``SIZES``/``DENSE_SIZES`` in
#: ``bench_congest_engine``), ``grid`` is the side length, ``ktree`` the
#: partial 3-tree workhorse, ``tree`` a uniform random tree.
FAMILY_SIZES = {
    "path": {"smoke": 40, "small": 120, "full": 2000},
    "dense": {"smoke": 24, "small": 60, "full": 400},
    "grid": {"smoke": 6, "small": 10, "full": 40},
    "ktree": {"smoke": 32, "small": 80, "full": 240},
    "tree": {"smoke": 40, "small": 120, "full": 500},
    "bipartite": {"smoke": 24, "small": 60, "full": 160},
    "chords": {"smoke": 24, "small": 40, "full": 80},
}

FAMILIES = tuple(sorted(FAMILY_SIZES))

#: CONGEST engine tiers (the ``engine=`` axis of the simulator).  The
#: serving protocol reinterprets this axis as the decode backend
#: (``scalar`` | ``packed``); structural protocols pin it to ``"-"``.
ENGINES = ("legacy", "fast", "vectorized", "sharded", "async")
STRUCTURAL_ENGINE = "-"


def family_size(family: str, scale: str) -> int:
    """Instance size of ``family`` at ``scale`` (raises on unknown values)."""
    if family not in FAMILY_SIZES:
        raise KeyError(f"unknown graph family {family!r} (have {FAMILIES})")
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r} (have {SCALES})")
    return FAMILY_SIZES[family][scale]


@dataclass(frozen=True)
class CellSpec:
    """One point of the experiment matrix.

    Immutable and hashable; :meth:`cell_hash` is the persistence key.
    """

    protocol: str
    engine: str
    family: str
    scale: str
    seed: int

    def to_dict(self) -> dict:
        return {
            "engine": self.engine,
            "family": self.family,
            "protocol": self.protocol,
            "scale": self.scale,
            "schema": SCHEMA_VERSION,
            "seed": self.seed,
        }

    def cell_hash(self) -> str:
        """Content hash of the spec (first 16 hex chars of its SHA-256).

        Canonical JSON (sorted keys, no whitespace variance) of
        :meth:`to_dict`, so the hash is stable across processes and
        python versions and changes iff an axis value or the schema
        version changes.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def label(self) -> str:
        return (
            f"{self.protocol}/{self.engine}/{self.family}"
            f"@{self.scale} seed={self.seed}"
        )


@dataclass(frozen=True)
class Matrix:
    """A declarative cross product of axis values, filtered for validity.

    :meth:`cells` consults the protocol registry so only cells a
    protocol adapter actually supports are produced (e.g. the serving
    protocol only pairs with the ``scalar``/``packed`` backends, the
    structural protocols ignore the engine axis entirely).
    """

    protocols: Tuple[str, ...]
    engines: Tuple[str, ...]
    families: Tuple[str, ...]
    scale: str
    seeds: Tuple[int, ...]

    def cells(self) -> List[CellSpec]:
        from .protocols import REGISTRY  # lazy: protocols imports this module

        out: List[CellSpec] = []
        for protocol in self.protocols:
            adapter = REGISTRY.get(protocol)
            if adapter is None:
                raise KeyError(
                    f"unknown protocol {protocol!r} "
                    f"(have {tuple(sorted(REGISTRY))})"
                )
            engines = [e for e in self.engines if e in adapter.engines]
            if adapter.engines == (STRUCTURAL_ENGINE,):
                # Engine-independent protocol: one cell regardless of the
                # requested engine set.
                engines = [STRUCTURAL_ENGINE]
            families = [f for f in self.families if f in adapter.families]
            for family in families:
                for engine in engines:
                    for seed in self.seeds:
                        out.append(
                            CellSpec(
                                protocol=protocol,
                                engine=engine,
                                family=family,
                                scale=self.scale,
                                seed=seed,
                            )
                        )
        return out


def make_matrix(
    protocols: Optional[Sequence[str]] = None,
    engines: Optional[Sequence[str]] = None,
    families: Optional[Sequence[str]] = None,
    scale: str = "smoke",
    seeds: Iterable[int] = (12345,),
) -> Matrix:
    """Build a :class:`Matrix`, defaulting unset axes to the smoke defaults."""
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r} (have {SCALES})")
    return Matrix(
        protocols=tuple(protocols) if protocols else DEFAULT_PROTOCOLS,
        engines=tuple(engines) if engines else DEFAULT_ENGINES,
        families=tuple(families) if families else DEFAULT_FAMILIES,
        scale=scale,
        seeds=tuple(seeds),
    )


#: The default sweep: the engine-tier shoot-out protocols on the two
#: round shapes the benches track, plus the serving backends.  Kept
#: small enough that ``repro-bench run --scale smoke`` is a CI-speed
#: command; widen with ``--protocol/--engine/--family``.
DEFAULT_PROTOCOLS = ("bellman_ford", "bfs_tree", "serving_query")
DEFAULT_ENGINES = ("fast", "vectorized", "scalar", "packed")
DEFAULT_FAMILIES = ("path", "dense", "ktree")
