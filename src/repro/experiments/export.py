"""Export matrix-cell records into the ``BENCH_*.json`` trajectories.

The committed trajectory files are the cross-PR record the CI ``cat``
steps display; this module folds fresh matrix cells into them through
the hardened merge-writer (atomic, locked, corrupt-safe), so a matrix
sweep and the legacy per-module benches share one persistence path.

Grouping: cells that differ only in engine and seed become the tiers of
one case named ``matrix_<protocol>_<family>_<scale>`` — e.g. the smoke
Bellman-Ford sweep on the dense family lands as
``matrix_bellman_ford_dense_smoke`` with one tier per engine (suffixed
``[s<seed>]`` when several seeds were swept).  Serving-protocol cells go
to the serving trajectory; everything else to the engine trajectory.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .store import ResultStore
from .trajectory import merge_trajectory_record

ENGINE_TRAJECTORY = "BENCH_engine.json"
SERVING_TRAJECTORY = "BENCH_serving.json"


def trajectory_for_protocol(protocol: str) -> str:
    return "serving" if protocol == "serving_query" else "engine"


def export_store(
    store: ResultStore,
    engine_out: str = ENGINE_TRAJECTORY,
    serving_out: str = SERVING_TRAJECTORY,
) -> Dict[str, int]:
    """Merge every store record into the trajectory files.

    Returns ``{"engine": <cases written>, "serving": <cases written>}``.
    """
    groups: Dict[Tuple[str, str, str], Dict[str, dict]] = {}
    seeds_by_group: Dict[Tuple[str, str, str], set] = {}
    for _, record in store.records():
        spec = record.get("spec", {})
        key = (spec.get("protocol"), spec.get("family"), spec.get("scale"))
        groups.setdefault(key, {})
        seeds_by_group.setdefault(key, set()).add(spec.get("seed"))
        groups[key][(spec.get("engine"), spec.get("seed"))] = record
    written = {"engine": 0, "serving": 0}
    for (protocol, family, scale), cells in sorted(groups.items()):
        multi_seed = len(seeds_by_group[(protocol, family, scale)]) > 1
        tiers = {}
        extra = {"cells": {}, "source": "repro-bench"}
        for (engine, seed), record in sorted(cells.items(), key=str):
            tier_key = f"{engine}[s{seed}]" if multi_seed else str(engine)
            timing = dict(record.get("timing", {}))
            result = record.get("result", {})
            tier = {"seconds": timing.get("seconds")}
            for metric in ("msgs_per_sec", "qps"):
                if metric in timing:
                    tier[metric] = timing[metric]
            if "messages" in result:
                tier["messages"] = result["messages"]
            if result.get("engine_selected") not in (None, engine):
                tier["engine_selected"] = result["engine_selected"]
            tiers[tier_key] = tier
            extra["cells"][tier_key] = record.get("hash")
            for fact in ("n", "m", "rounds", "pairs"):
                if fact in result and fact not in extra:
                    extra[fact] = result[fact]
        kind = trajectory_for_protocol(protocol)
        out_path = serving_out if kind == "serving" else engine_out
        case = f"matrix_{protocol}_{family}_{scale}"
        merge_trajectory_record(out_path, case, scale, tiers, extra=extra)
        written[kind] += 1
    return written
