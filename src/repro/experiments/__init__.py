"""Unified experiment-matrix runner with resumable persistence.

``repro-bench`` (``python -m repro.experiments`` or ``bin/repro-bench``)
sweeps a declarative matrix of
``(engine tier x protocol/primitive x graph family x scale x seed)``
cells through the existing :meth:`CongestNetwork.run` / serving /
analysis entry points, persists one atomically-written record per cell
keyed by the content hash of its spec (so interrupted sweeps resume
exactly where they left off), gates the committed ``BENCH_*.json``
trajectories against the repo's speedup claims, and exports fresh cells
back into those trajectories through the hardened merge-writer.

See ``docs/experiments.md`` for the matrix spec, the hashing/resume
semantics, the gate tolerances and the one-command recipes.
"""

from .export import export_store
from .gates import GateReport, check_store, check_trajectory, run_gates
from .matrix import (
    ENGINES,
    FAMILIES,
    SCALES,
    SCHEMA_VERSION,
    CellSpec,
    Matrix,
    family_size,
    make_matrix,
)
from .protocols import REGISTRY, ProtocolAdapter, register_protocol
from .runner import RunSummary, execute_cell, run_matrix
from .store import ResultStore, parquet_available
from .trajectory import (
    TrajectoryCorruptWarning,
    load_trajectory,
    merge_trajectory_record,
    write_json_atomic,
)

__all__ = [
    "CellSpec",
    "ENGINES",
    "FAMILIES",
    "GateReport",
    "Matrix",
    "ProtocolAdapter",
    "REGISTRY",
    "ResultStore",
    "RunSummary",
    "SCALES",
    "SCHEMA_VERSION",
    "TrajectoryCorruptWarning",
    "check_store",
    "check_trajectory",
    "execute_cell",
    "export_store",
    "family_size",
    "load_trajectory",
    "make_matrix",
    "merge_trajectory_record",
    "parquet_available",
    "register_protocol",
    "run_gates",
    "run_matrix",
    "write_json_atomic",
]
