"""Regression gates over the committed ``BENCH_*.json`` trajectories.

The trajectory files accumulate *measured* per-tier records across PRs;
absolute wall seconds are machine-dependent, so the gates check the
dimensionless claims the benches themselves assert — tier-vs-tier
speedup ratios within one case — plus structural health (tiers present,
timings positive).  A tier record that has been slowed past tolerance
(relative to the tier it is claimed to beat) fails the gate; a record
merely re-measured on a slower machine does not, because both tiers of
a ratio move together.

Each gate carries per-scale floors: the bench suite records ``tiny``
(CI smoke) and ``full`` (paper-scale) entries, and the matrix runner
records ``smoke``/``small``/``full`` cells; ``tiny`` and ``smoke`` are
aliases.  A missing case is skipped (trajectories grow over time); a
missing *tier inside a present case* is a violation.  ``tolerance``
relaxes every floor multiplicatively: a floor ``f`` passes at
``ratio >= f * (1 - tolerance)``.

``check_store`` applies the same idea to fresh matrix records: cells
that differ only in the engine axis are paired against the ``fast``
baseline and gated by per-scale engine floors.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .store import ResultStore

#: Scale aliases: the bench suite's ``--bench-scale tiny`` records and the
#: matrix runner's ``smoke`` cells carry the same floors.
_SCALE_ALIASES = {"tiny": "smoke"}


def _canon_scale(scale: str) -> str:
    return _SCALE_ALIASES.get(scale, scale)


@dataclass(frozen=True)
class TierRatioGate:
    """``baseline.seconds / candidate.seconds >= floor`` within one case."""

    case: str
    baseline: str
    candidate: str
    floors: Dict[str, float]  # canonical scale -> min speedup ratio

    def check(self, entry: dict, tolerance: float) -> Optional[str]:
        scale = _canon_scale(str(entry.get("scale", "")))
        floor = self.floors.get(scale)
        tiers = entry.get("tiers", {})
        base = tiers.get(self.baseline)
        cand = tiers.get(self.candidate)
        if base is None or cand is None:
            missing = self.baseline if base is None else self.candidate
            return f"{self.case}: tier {missing!r} missing from trajectory entry"
        if floor is None:
            return None
        try:
            ratio = float(base["seconds"]) / float(cand["seconds"])
        except (KeyError, TypeError, ValueError, ZeroDivisionError):
            return f"{self.case}: unusable seconds for {self.baseline}/{self.candidate}"
        bar = floor * (1.0 - tolerance)
        if ratio < bar:
            return (
                f"{self.case}: {self.candidate} only {ratio:.2f}x over "
                f"{self.baseline} at scale {scale!r} (floor {floor} with "
                f"tolerance {tolerance} -> {bar:.2f})"
            )
        return None


@dataclass(frozen=True)
class ExtraMinGate:
    """A recorded scalar at ``path`` inside the entry must be ``>= floor``."""

    case: str
    path: Tuple[str, ...]
    floors: Dict[str, float]

    def check(self, entry: dict, tolerance: float) -> Optional[str]:
        scale = _canon_scale(str(entry.get("scale", "")))
        floor = self.floors.get(scale)
        if floor is None:
            return None
        value = entry
        for part in self.path:
            if not isinstance(value, dict) or part not in value:
                return (
                    f"{self.case}: recorded value {'.'.join(self.path)} missing"
                )
            value = value[part]
        try:
            measured = float(value)
        except (TypeError, ValueError):
            return f"{self.case}: {'.'.join(self.path)} is not a number"
        bar = floor * (1.0 - tolerance)
        if measured < bar:
            return (
                f"{self.case}: {'.'.join(self.path)} = {measured:.2f} below "
                f"floor {floor} (tolerance {tolerance} -> {bar:.2f}) "
                f"at scale {scale!r}"
            )
        return None


#: The dimensionless claims of BENCH_engine.json, mirroring the bars the
#: bench modules assert when they write the records.
ENGINE_GATES = (
    TierRatioGate(
        case="bellman_ford_dense",
        baseline="fast",
        candidate="vectorized",
        floors={"full": 5.0, "smoke": 1.0, "small": 1.0},
    ),
    TierRatioGate(
        case="bellman_ford_dense_sharded",
        baseline="fast",
        candidate="sharded[2]",
        floors={"full": 1.0, "smoke": 0.5, "small": 0.5},
    ),
    TierRatioGate(
        case="bellman_ford_deep_path",
        baseline="legacy",
        candidate="fast",
        floors={"full": 2.0},
    ),
    TierRatioGate(
        case="bfs_broadcast_grid",
        baseline="legacy",
        candidate="fast",
        floors={"full": 1.2},
    ),
    ExtraMinGate(
        case="bellman_ford_async",
        path=("bucketed_vs_heap", "deep_path"),
        floors={"full": 2.0, "smoke": 2.0, "small": 2.0},
    ),
    ExtraMinGate(
        case="bellman_ford_async",
        path=("bucketed_vs_heap", "dense"),
        floors={"full": 1.0, "smoke": 1.0, "small": 1.0},
    ),
)

#: The serving trajectory's headline: batched packed serving vs the scalar
#: point baseline (asserted >= 10x by the load bench at full scale).
SERVING_GATES = (
    ExtraMinGate(
        case="serving_load",
        path=("speedup_batched_vs_scalar_point",),
        floors={"full": 10.0},
    ),
)

GATES_BY_TRAJECTORY = {"engine": ENGINE_GATES, "serving": SERVING_GATES}


@dataclass
class GateReport:
    """Collected outcome of a gate run."""

    checks: int = 0
    violations: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def merge(self, other: "GateReport") -> None:
        self.checks += other.checks
        self.violations.extend(other.violations)
        self.notes.extend(other.notes)

    def render(self) -> str:
        lines = [f"gates checked: {self.checks}"]
        lines += [f"note: {note}" for note in self.notes]
        if self.violations:
            lines.append(f"FAIL ({len(self.violations)} violation(s)):")
            lines += [f"  - {v}" for v in self.violations]
        else:
            lines.append("PASS")
        return "\n".join(lines)


def _structural_violations(name: str, record: dict) -> List[str]:
    """Every trajectory entry must be shaped sanely with positive timings."""
    out = []
    for case, entry in sorted(record.items()):
        if not isinstance(entry, dict) or not isinstance(entry.get("tiers"), dict):
            out.append(f"{name}:{case}: entry has no tiers mapping")
            continue
        if not entry["tiers"]:
            out.append(f"{name}:{case}: empty tiers mapping")
        for tier, fields_ in sorted(entry["tiers"].items()):
            if not isinstance(fields_, dict):
                out.append(f"{name}:{case}:{tier}: tier entry is not a mapping")
                continue
            for metric in ("seconds", "qps"):
                if metric in fields_:
                    try:
                        value = float(fields_[metric])
                    except (TypeError, ValueError):
                        value = -1.0
                    if value <= 0:
                        out.append(
                            f"{name}:{case}:{tier}: non-positive {metric} "
                            f"({fields_[metric]!r})"
                        )
    return out


def check_trajectory(path: str, kind: str, tolerance: float = 0.1) -> GateReport:
    """Gate one committed trajectory file (``kind`` = ``engine``/``serving``)."""
    report = GateReport()
    if kind not in GATES_BY_TRAJECTORY:
        raise KeyError(f"unknown trajectory kind {kind!r}")
    if not os.path.exists(path):
        report.violations.append(f"trajectory file {path!r} does not exist")
        return report
    try:
        with open(path) as fh:
            record = json.load(fh)
    except ValueError as exc:
        report.violations.append(f"trajectory file {path!r} is not valid JSON: {exc}")
        return report
    if not isinstance(record, dict):
        report.violations.append(f"trajectory file {path!r} is not a JSON object")
        return report
    report.violations.extend(_structural_violations(kind, record))
    report.checks += len(record)
    for gate in GATES_BY_TRAJECTORY[kind]:
        entry = record.get(gate.case)
        if entry is None:
            report.notes.append(f"{kind}:{gate.case}: not recorded yet (skipped)")
            continue
        report.checks += 1
        violation = gate.check(entry, tolerance)
        if violation:
            report.violations.append(f"{kind}:{violation}")
    return report


#: Fresh-store engine floors: speedup of ``engine`` over the paired ``fast``
#: cell, per (protocol, family, canonical scale).  Deliberately looser than
#: the bench bars, and with NO floors at smoke scale: smoke instances are so
#: small that the array tier's fixed per-round overhead legitimately loses
#: to ``fast`` by an unbounded machine-dependent factor, so smoke cells are
#: gated on correctness (digest agreement, structure) only.
STORE_ENGINE_FLOORS = {
    ("bellman_ford", "dense", "full"): {"vectorized": 5.0},
    ("bellman_ford", "dense", "small"): {"vectorized": 0.8},
}


def check_store(store: ResultStore, tolerance: float = 0.1) -> GateReport:
    """Gate fresh matrix records: engine speedups vs the paired fast cell."""
    report = GateReport()
    by_group: Dict[tuple, Dict[str, dict]] = {}
    for _, record in store.records():
        spec = record.get("spec", {})
        group = (
            spec.get("protocol"),
            spec.get("family"),
            _canon_scale(str(spec.get("scale", ""))),
            spec.get("seed"),
        )
        by_group.setdefault(group, {})[spec.get("engine")] = record
    for (protocol, family, scale, seed), engines in sorted(by_group.items()):
        fast = engines.get("fast")
        if fast is None:
            continue
        digests = {
            engine: rec.get("result", {}).get("output_digest")
            for engine, rec in engines.items()
        }
        # Engine tiers must agree on the protocol output: a digest split
        # means the tiers diverged, which no timing can excuse.
        distinct = {d for d in digests.values() if d is not None}
        if len(distinct) > 1:
            report.violations.append(
                f"store:{protocol}/{family}@{scale} seed={seed}: engine tiers "
                f"disagree on output_digest ({digests})"
            )
        report.checks += 1
        floors = STORE_ENGINE_FLOORS.get((protocol, family, scale), {})
        for engine, floor in sorted(floors.items()):
            rec = engines.get(engine)
            if rec is None:
                continue
            report.checks += 1
            try:
                ratio = float(fast["timing"]["seconds"]) / float(
                    rec["timing"]["seconds"]
                )
            except (KeyError, TypeError, ValueError, ZeroDivisionError):
                report.violations.append(
                    f"store:{protocol}/{family}@{scale} seed={seed}: "
                    f"unusable timing for engine {engine!r}"
                )
                continue
            # A fallen-back tier timed the tier it fell back to; exempt it.
            if rec.get("result", {}).get("engine_selected") != engine:
                report.notes.append(
                    f"store:{protocol}/{family}@{scale} seed={seed}: engine "
                    f"{engine!r} fell back to "
                    f"{rec.get('result', {}).get('engine_selected')!r}; "
                    f"speedup floor skipped"
                )
                continue
            bar = floor * (1.0 - tolerance)
            if ratio < bar:
                report.violations.append(
                    f"store:{protocol}/{family}@{scale} seed={seed}: engine "
                    f"{engine!r} only {ratio:.2f}x over fast "
                    f"(floor {floor} -> {bar:.2f})"
                )
    return report


def run_gates(
    engine_path: Optional[str] = None,
    serving_path: Optional[str] = None,
    store: Optional[ResultStore] = None,
    tolerance: float = 0.1,
) -> GateReport:
    """Gate any combination of trajectory files and a fresh cell store."""
    report = GateReport()
    if engine_path is not None:
        report.merge(check_trajectory(engine_path, "engine", tolerance))
    if serving_path is not None:
        report.merge(check_trajectory(serving_path, "serving", tolerance))
    if store is not None:
        report.merge(check_store(store, tolerance))
    return report
