"""Scaling-law fits for the experiment harness.

The experiments check *shapes* — e.g. "rounds grow roughly linearly with D at
fixed τ" or "rounds grow polynomially in τ but only polylogarithmically in n".
These helpers perform the simple log-log / linear least-squares fits used to
quantify those shapes in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np


@dataclass
class FitResult:
    """Least-squares fit y ≈ a · x^b (power law) or y ≈ a + b·x (linear).

    Attributes
    ----------
    coefficient:
        a (scale / intercept).
    exponent:
        b (power-law exponent or linear slope).
    r_squared:
        Coefficient of determination of the fit in the transformed space.
    """

    coefficient: float
    exponent: float
    r_squared: float


def _r_squared(y: np.ndarray, y_hat: np.ndarray) -> float:
    ss_res = float(np.sum((y - y_hat) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    if ss_tot == 0:
        return 1.0
    return 1.0 - ss_res / ss_tot


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Fit y ≈ a·x^b by least squares in log-log space.

    Non-positive data points are dropped; at least two distinct x values are
    required.
    """
    pairs = [(x, y) for x, y in zip(xs, ys) if x > 0 and y > 0 and math.isfinite(x) and math.isfinite(y)]
    if len({x for x, _ in pairs}) < 2:
        raise ValueError("fit_power_law needs at least two distinct positive x values")
    lx = np.log(np.array([x for x, _ in pairs], dtype=float))
    ly = np.log(np.array([y for _, y in pairs], dtype=float))
    slope, intercept = np.polyfit(lx, ly, 1)
    y_hat = slope * lx + intercept
    return FitResult(
        coefficient=float(np.exp(intercept)),
        exponent=float(slope),
        r_squared=_r_squared(ly, y_hat),
    )


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Fit y ≈ a + b·x by ordinary least squares."""
    pairs = [(x, y) for x, y in zip(xs, ys) if math.isfinite(x) and math.isfinite(y)]
    if len({x for x, _ in pairs}) < 2:
        raise ValueError("fit_linear needs at least two distinct x values")
    x = np.array([p[0] for p in pairs], dtype=float)
    y = np.array([p[1] for p in pairs], dtype=float)
    slope, intercept = np.polyfit(x, y, 1)
    y_hat = slope * x + intercept
    return FitResult(coefficient=float(intercept), exponent=float(slope), r_squared=_r_squared(y, y_hat))


def growth_ratio(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Ratio of relative growths: (y_max/y_min) / (x_max/x_min).

    A value ≪ 1 indicates y grows much more slowly than x — the signature of
    the "polylog in n" claims.
    """
    xs_f = [x for x in xs if math.isfinite(x) and x > 0]
    ys_f = [y for y in ys if math.isfinite(y) and y > 0]
    if not xs_f or not ys_f:
        return math.nan
    x_ratio = max(xs_f) / min(xs_f)
    y_ratio = max(ys_f) / min(ys_f)
    if x_ratio <= 1:
        return math.nan
    return y_ratio / x_ratio
