"""Scaling-law fits for the experiment harness.

The experiments check *shapes* — e.g. "rounds grow roughly linearly with D at
fixed τ" or "rounds grow polynomially in τ but only polylogarithmically in n".
These helpers perform the simple log-log / linear least-squares fits used to
quantify those shapes in EXPERIMENTS.md.

Deliberately dependency-free: an ordinary 1-D least-squares line has a
closed form, so the fits run identically in the no-numpy CI environment
that exercises the simulator's fallback tiers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


@dataclass
class FitResult:
    """Least-squares fit y ≈ a · x^b (power law) or y ≈ a + b·x (linear).

    Attributes
    ----------
    coefficient:
        a (scale / intercept).
    exponent:
        b (power-law exponent or linear slope).
    r_squared:
        Coefficient of determination of the fit in the transformed space.
    """

    coefficient: float
    exponent: float
    r_squared: float


def _least_squares_line(x: List[float], y: List[float]) -> Tuple[float, float, float]:
    """Return ``(slope, intercept, r_squared)`` of the OLS line y ≈ a + b·x."""
    n = len(x)
    mean_x = sum(x) / n
    mean_y = sum(y) / n
    var_x = sum((xi - mean_x) ** 2 for xi in x)
    cov_xy = sum((xi - mean_x) * (yi - mean_y) for xi, yi in zip(x, y))
    slope = cov_xy / var_x
    intercept = mean_y - slope * mean_x
    ss_res = sum((yi - (slope * xi + intercept)) ** 2 for xi, yi in zip(x, y))
    ss_tot = sum((yi - mean_y) ** 2 for yi in y)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return slope, intercept, r_squared


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Fit y ≈ a·x^b by least squares in log-log space.

    Non-positive data points are dropped; at least two distinct x values are
    required.
    """
    pairs = [(x, y) for x, y in zip(xs, ys) if x > 0 and y > 0 and math.isfinite(x) and math.isfinite(y)]
    if len({x for x, _ in pairs}) < 2:
        raise ValueError("fit_power_law needs at least two distinct positive x values")
    lx = [math.log(x) for x, _ in pairs]
    ly = [math.log(y) for _, y in pairs]
    slope, intercept, r_squared = _least_squares_line(lx, ly)
    return FitResult(
        coefficient=math.exp(intercept),
        exponent=slope,
        r_squared=r_squared,
    )


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Fit y ≈ a + b·x by ordinary least squares."""
    pairs = [(x, y) for x, y in zip(xs, ys) if math.isfinite(x) and math.isfinite(y)]
    if len({x for x, _ in pairs}) < 2:
        raise ValueError("fit_linear needs at least two distinct x values")
    x = [p[0] for p in pairs]
    y = [p[1] for p in pairs]
    slope, intercept, r_squared = _least_squares_line(x, y)
    return FitResult(coefficient=intercept, exponent=slope, r_squared=r_squared)


def growth_ratio(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Ratio of relative growths: (y_max/y_min) / (x_max/x_min).

    A value ≪ 1 indicates y grows much more slowly than x — the signature of
    the "polylog in n" claims.
    """
    xs_f = [x for x in xs if math.isfinite(x) and x > 0]
    ys_f = [y for y in ys if math.isfinite(y) and y > 0]
    if not xs_f or not ys_f:
        return math.nan
    x_ratio = max(xs_f) / min(xs_f)
    y_ratio = max(ys_f) / min(ys_f)
    if x_ratio <= 1:
        return math.nan
    return y_ratio / x_ratio
