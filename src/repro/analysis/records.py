"""Result tables for the experiment harness.

A :class:`ResultTable` is a small column-oriented table with formatting
helpers (fixed-width text, markdown, CSV) — enough for the benchmark harness
to print the same kind of rows/series a paper evaluation section would,
without pulling in pandas.
"""

from __future__ import annotations

import csv
import io
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence


@dataclass
class ExperimentRecord:
    """A single experiment data point (one row of a result table)."""

    values: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.values[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.values.get(key, default)


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "inf"
        if value == int(value) and abs(value) < 1e9:
            return str(int(value))
        return f"{value:.3g}"
    return str(value)


class ResultTable:
    """A named, column-ordered collection of experiment records."""

    def __init__(self, name: str, columns: Sequence[str]) -> None:
        self.name = name
        self.columns = list(columns)
        self.records: List[ExperimentRecord] = []

    # ------------------------------------------------------------------ #
    def add(self, **values: Any) -> ExperimentRecord:
        """Append a row; unknown columns are added to the column list."""
        for key in values:
            if key not in self.columns:
                self.columns.append(key)
        record = ExperimentRecord(dict(values))
        self.records.append(record)
        return record

    def column(self, name: str) -> List[Any]:
        """All values of one column (missing entries become ``None``)."""
        return [r.get(name) for r in self.records]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # ------------------------------------------------------------------ #
    def to_text(self) -> str:
        """Fixed-width text rendering (what the benchmarks print)."""
        headers = self.columns
        rows = [[_format_value(r.get(c, "")) for c in headers] for r in self.records]
        widths = [
            max(len(h), *(len(row[i]) for row in rows)) if rows else len(h)
            for i, h in enumerate(headers)
        ]
        lines = [f"== {self.name} =="]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
        lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
        for row in rows:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown table."""
        headers = self.columns
        lines = ["| " + " | ".join(headers) + " |"]
        lines.append("| " + " | ".join("---" for _ in headers) + " |")
        for r in self.records:
            lines.append(
                "| " + " | ".join(_format_value(r.get(c, "")) for c in headers) + " |"
            )
        return "\n".join(lines)

    def to_csv(self) -> str:
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.columns)
        for r in self.records:
            writer.writerow([r.get(c, "") for c in self.columns])
        return buf.getvalue()

    def summary(self, column: str) -> Dict[str, float]:
        """Min/max/mean of a numeric column (ignoring missing values)."""
        values = [v for v in self.column(column) if isinstance(v, (int, float)) and math.isfinite(v)]
        if not values:
            return {"min": math.nan, "max": math.nan, "mean": math.nan}
        return {
            "min": float(min(values)),
            "max": float(max(values)),
            "mean": sum(values) / len(values),
        }
