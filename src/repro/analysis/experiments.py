"""Experiment runners E1–E9 (see DESIGN.md §3 and EXPERIMENTS.md).

Each function executes one experiment over a list of workloads and returns a
:class:`~repro.analysis.records.ResultTable`.  Benchmarks wrap these runners
with ``pytest-benchmark``; examples print the tables directly.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, List, Optional, Sequence

from repro.analysis.records import ResultTable
from repro.analysis.workloads import WorkloadSpec
from repro.baselines.congest_bounds import (
    general_graph_exact_sssp_rounds,
    general_graph_sssp_rounds,
    girth_baseline_rounds,
    matching_baseline_rounds,
)
from repro.congest.bellman_ford import distributed_bellman_ford
from repro.core.config import FrameworkConfig
from repro.core.rounds import CostModel
from repro.decomposition.separator import find_balanced_separator
from repro.decomposition.tree_decomposition import build_tree_decomposition
from repro.decomposition.validation import (
    is_balanced_separator,
    tree_decomposition_violations,
)
from repro.girth.baselines import exact_girth_directed, exact_girth_undirected
from repro.girth.girth import directed_girth, undirected_girth
from repro.graphs import generators
from repro.graphs.properties import diameter, dijkstra
from repro.graphs.treewidth import treewidth_upper_bound
from repro.labeling.construction import build_distance_labeling
from repro.labeling.sssp import single_source_shortest_paths
from repro.matching.bipartite import maximum_bipartite_matching
from repro.matching.hopcroft_karp import hopcroft_karp_matching
from repro.walks.cdl import build_constrained_labeling
from repro.walks.constraints import ColoredWalkConstraint, CountWalkConstraint


def _config(seed: int = 0) -> FrameworkConfig:
    return FrameworkConfig(seed=seed)


# --------------------------------------------------------------------------- #
# E1: balanced separators
# --------------------------------------------------------------------------- #
def run_separator_experiment(workloads: Sequence[WorkloadSpec], seed: int = 0) -> ResultTable:
    """E1 — Lemma 1: separator size ≤ 400(τ+1)², balance, and round scaling."""
    table = ResultTable(
        "E1: balanced separators (Lemma 1)",
        ["workload", "n", "D", "tau_ub", "sep_size", "size_bound", "balance", "method", "rounds"],
    )
    for spec in workloads:
        graph = spec.build_graph()
        desc = spec.describe()
        config = _config(seed)
        cm = CostModel(n=graph.num_nodes(), diameter=int(desc["diameter"]))
        result = find_balanced_separator(
            graph, params=config.separator, seed=seed, cost_model=cm
        )
        tau = int(desc["treewidth_ub"])
        valid = is_balanced_separator(
            graph, result.separator, config.separator.balance_fraction
        )
        table.add(
            workload=spec.name,
            n=desc["n"],
            D=desc["diameter"],
            tau_ub=tau,
            sep_size=result.size(),
            size_bound=400 * (tau + 1) ** 2,
            balance=round(result.balance, 3),
            method=result.method,
            rounds=result.rounds,
            valid=valid,
        )
    return table


# --------------------------------------------------------------------------- #
# E2: tree decomposition
# --------------------------------------------------------------------------- #
def run_decomposition_experiment(workloads: Sequence[WorkloadSpec], seed: int = 0) -> ResultTable:
    """E2 — Theorem 1: width O(τ² log n), depth O(log n), rounds Õ(τ²D + τ³)."""
    table = ResultTable(
        "E2: distributed tree decomposition (Theorem 1)",
        ["workload", "n", "D", "tau_ub", "width", "width_bound", "depth", "depth_bound", "rounds", "valid"],
    )
    for spec in workloads:
        graph = spec.build_graph()
        desc = spec.describe()
        result = build_tree_decomposition(graph, config=_config(seed))
        td = result.decomposition
        tau = max(1, int(desc["treewidth_ub"]))
        log_n = max(1, math.ceil(math.log2(max(2, graph.num_nodes()))))
        table.add(
            workload=spec.name,
            n=desc["n"],
            D=desc["diameter"],
            tau_ub=tau,
            width=td.width(),
            width_bound=400 * (tau + 1) ** 2 * log_n,
            depth=td.depth(),
            depth_bound=4 * log_n,
            rounds=result.rounds,
            valid=not tree_decomposition_violations(graph, td),
        )
    return table


# --------------------------------------------------------------------------- #
# E3: distance labeling
# --------------------------------------------------------------------------- #
def run_labeling_experiment(
    workloads: Sequence[WorkloadSpec], seed: int = 0, check_pairs: int = 200
) -> ResultTable:
    """E3 — Theorem 2: exact directed distance labels, size Õ(τ²), rounds Õ(τ²D + τ⁵)."""
    table = ResultTable(
        "E3: exact directed distance labeling (Theorem 2)",
        ["workload", "n", "D", "tau_ub", "max_label", "label_bits", "rounds", "errors"],
    )
    rng = random.Random(seed)
    for spec in workloads:
        instance = spec.build_instance()
        desc = spec.describe()
        result = build_distance_labeling(instance, config=_config(seed))
        labeling = result.labeling
        nodes = instance.nodes()
        errors = 0
        for _ in range(check_pairs):
            u = rng.choice(nodes)
            v = rng.choice(nodes)
            expected = dijkstra(instance, u).get(v, math.inf)
            if abs(labeling.distance(u, v) - expected) > 1e-9:
                errors += 1
        table.add(
            workload=spec.name,
            n=desc["n"],
            D=desc["diameter"],
            tau_ub=desc["treewidth_ub"],
            max_label=labeling.max_entries(),
            label_bits=labeling.max_size_bits(instance.num_nodes()),
            rounds=result.rounds,
            errors=errors,
        )
    return table


# --------------------------------------------------------------------------- #
# E4: SSSP scaling vs. the general-graph baselines
# --------------------------------------------------------------------------- #
def run_sssp_scaling_experiment(
    ns: Sequence[int], k: int = 3, seed: int = 0, engine: Optional[str] = None
) -> ResultTable:
    """E4 — fully-polynomial SSSP vs distributed Bellman-Ford and √n-type baselines.

    ``engine`` selects the simulation engine for the Bellman-Ford baseline
    (``"fast"``/``"legacy"``; default: the network's fast path).
    """
    table = ResultTable(
        "E4: SSSP round scaling at fixed treewidth (vs general-graph baselines)",
        [
            "n",
            "D",
            "tau_ub",
            "labeling_rounds",
            "sssp_rounds",
            "bellman_ford_rounds",
            "general_approx_sssp",
            "general_exact_sssp",
        ],
    )
    for n in ns:
        graph = generators.partial_k_tree(n, k, seed=seed + n)
        instance = generators.to_directed_instance(
            graph, weight_range=(1, 10), orientation="asymmetric", seed=seed + n + 1
        )
        d = diameter(graph, exact=n <= 400)
        cm = CostModel(n=n, diameter=d)
        labeling = build_distance_labeling(instance, config=_config(seed), cost_model=cm)
        source = min(graph.nodes(), key=str)
        sssp = single_source_shortest_paths(
            labeling.labeling, source, cost_model=cm, labeling_result=labeling
        )
        bf = distributed_bellman_ford(instance, source, engine=engine)
        table.add(
            n=n,
            D=d,
            tau_ub=treewidth_upper_bound(graph),
            labeling_rounds=labeling.rounds,
            sssp_rounds=sssp.total_rounds,
            bellman_ford_rounds=bf.rounds,
            general_approx_sssp=round(general_graph_sssp_rounds(n, d)),
            general_exact_sssp=round(general_graph_exact_sssp_rounds(n, d)),
        )
    return table


# --------------------------------------------------------------------------- #
# E5: stateful walks / constrained distance labeling
# --------------------------------------------------------------------------- #
def run_stateful_walk_experiment(
    n: int = 40, k: int = 3, palettes: Sequence[int] = (2, 3, 4), seed: int = 0
) -> ResultTable:
    """E5 — Theorem 3: CDL overhead as a function of the state-space size |Q|."""
    table = ResultTable(
        "E5: constrained distance labeling overhead (Theorem 3)",
        ["constraint", "states", "product_nodes", "rounds", "overhead_factor", "base_rounds"],
    )
    graph = generators.partial_k_tree(n, k, seed=seed)
    rng = random.Random(seed)
    base_instance = generators.to_directed_instance(
        graph, weight_range=(1, 5), orientation="both", seed=seed + 1
    )
    base = build_distance_labeling(base_instance, config=_config(seed))
    for c in palettes:
        instance = base_instance.copy()
        palette = list(range(c))
        for e in instance.edges():
            instance.set_label(e.eid, rng.choice(palette))
        constraint = ColoredWalkConstraint(palette)
        result = build_constrained_labeling(instance, constraint, config=_config(seed))
        table.add(
            constraint=f"colored({c})",
            states=constraint.state_count(),
            product_nodes=result.product.graph.num_nodes(),
            rounds=result.rounds,
            overhead_factor=result.simulation_overhead,
            base_rounds=base.rounds,
        )
    # count-c constraints
    for budget in (1, 2):
        instance = base_instance.copy()
        for e in instance.edges():
            instance.set_label(e.eid, 1 if rng.random() < 0.2 else 0)
        constraint = CountWalkConstraint(budget)
        result = build_constrained_labeling(instance, constraint, config=_config(seed))
        table.add(
            constraint=f"count({budget})",
            states=constraint.state_count(),
            product_nodes=result.product.graph.num_nodes(),
            rounds=result.rounds,
            overhead_factor=result.simulation_overhead,
            base_rounds=base.rounds,
        )
    return table


# --------------------------------------------------------------------------- #
# E6: bipartite maximum matching
# --------------------------------------------------------------------------- #
def run_matching_experiment(workloads: Sequence[WorkloadSpec], seed: int = 0) -> ResultTable:
    """E6 — Theorem 4: exact bipartite matching, rounds vs the Õ(s_max) baseline."""
    table = ResultTable(
        "E6: exact bipartite maximum matching (Theorem 4)",
        ["workload", "n", "tau_ub", "matching_size", "optimal", "exact", "rounds", "baseline_rounds", "augmentations"],
    )
    for spec in workloads:
        graph = spec.build_graph()
        desc = spec.describe()
        result = maximum_bipartite_matching(graph, config=_config(seed))
        optimum = len(hopcroft_karp_matching(graph))
        table.add(
            workload=spec.name,
            n=desc["n"],
            tau_ub=desc["treewidth_ub"],
            matching_size=result.size,
            optimal=optimum,
            exact=result.size == optimum,
            rounds=result.rounds,
            baseline_rounds=round(matching_baseline_rounds(optimum)),
            augmentations=result.augmentations,
        )
    return table


# --------------------------------------------------------------------------- #
# E7: weighted girth
# --------------------------------------------------------------------------- #
def run_girth_experiment(
    directed_workloads: Sequence[WorkloadSpec],
    undirected_workloads: Sequence[WorkloadSpec],
    seed: int = 0,
    trials_per_scale: int = 6,
) -> ResultTable:
    """E7 — Theorem 5: exact weighted girth for directed and undirected graphs."""
    table = ResultTable(
        "E7: weighted girth (Theorem 5)",
        ["workload", "mode", "n", "girth", "exact_girth", "match", "rounds", "baseline_rounds", "trials"],
    )
    for spec in directed_workloads:
        instance = spec.build_instance(orientation="random")
        desc = spec.describe()
        result = directed_girth(instance, config=_config(seed))
        exact = exact_girth_directed(instance)
        table.add(
            workload=spec.name,
            mode="directed",
            n=desc["n"],
            girth=result.girth,
            exact_girth=exact,
            match=abs(result.girth - exact) < 1e-9 or (math.isinf(result.girth) and math.isinf(exact)),
            rounds=result.rounds,
            baseline_rounds=round(girth_baseline_rounds(int(desc["n"]), exact)),
            trials=result.trials,
        )
    for spec in undirected_workloads:
        graph = generators.with_random_weights(spec.build_graph(), 1, 8, seed=seed + 5)
        desc = spec.describe()
        result = undirected_girth(
            graph, config=_config(seed), trials_per_scale=trials_per_scale
        )
        exact = exact_girth_undirected(graph)
        table.add(
            workload=spec.name,
            mode="undirected",
            n=desc["n"],
            girth=result.girth,
            exact_girth=exact,
            match=abs(result.girth - exact) < 1e-9 or (math.isinf(result.girth) and math.isinf(exact)),
            rounds=result.rounds,
            baseline_rounds=round(girth_baseline_rounds(int(desc["n"]), exact)),
            trials=result.trials,
        )
    return table


# --------------------------------------------------------------------------- #
# E8: part-wise aggregation / primitive costs
# --------------------------------------------------------------------------- #
def run_partwise_experiment(ns: Sequence[int], k: int = 3, seed: int = 0) -> ResultTable:
    """E8 — Lemma 9 / Theorem 6: primitive round costs vs measured BFS/broadcast rounds."""
    from repro.congest.network import CongestNetwork
    from repro.congest.primitives import broadcast, build_bfs_tree
    from repro.shortcuts.operations import SubgraphOperations
    from repro.shortcuts.partition import SubgraphCollection

    table = ResultTable(
        "E8: primitive costs (Lemma 9, Corollaries 2-3)",
        ["n", "D", "tau_ub", "bfs_rounds_measured", "broadcast_rounds_measured", "pa_rounds_model", "bct16_rounds_model", "mvc16_rounds_model"],
    )
    for n in ns:
        graph = generators.partial_k_tree(n, k, seed=seed + n)
        d = diameter(graph, exact=n <= 400)
        tau = treewidth_upper_bound(graph)
        network = CongestNetwork(graph)
        root = min(graph.nodes(), key=str)
        _, _, bfs_result = build_bfs_tree(network, root)
        _, bc_result = broadcast(network, root, 42)
        cm = CostModel(n=n, diameter=d)
        collection = SubgraphCollection(graph, [graph.nodes()])
        ops = SubgraphOperations(collection, width=tau, cost_model=cm)
        table.add(
            n=n,
            D=d,
            tau_ub=tau,
            bfs_rounds_measured=bfs_result.rounds,
            broadcast_rounds_measured=bc_result.rounds,
            pa_rounds_model=cm.partwise_aggregation(tau),
            bct16_rounds_model=cm.broadcast_multi(tau, 16),
            mvc16_rounds_model=cm.min_vertex_cut_multi(tau, 16, tau + 1),
        )
        _ = ops
    return table


# --------------------------------------------------------------------------- #
# E9: crossover — fully polynomial vs general-graph complexity
# --------------------------------------------------------------------------- #
def run_crossover_experiment(
    ns: Sequence[int], k: int = 3, seed: int = 0
) -> ResultTable:
    """E9 — when does Õ(τ²D + τ⁵) beat the Ω̃(√n + D)-type general bounds?"""
    table = ResultTable(
        "E9: crossover of fully-polynomial vs general-graph rounds",
        ["n", "D", "tau_ub", "framework_rounds", "general_exact_sssp", "advantage"],
    )
    for n in ns:
        graph = generators.partial_k_tree(n, k, seed=seed + n)
        instance = generators.to_directed_instance(
            graph, weight_range=(1, 10), orientation="asymmetric", seed=seed + n + 1
        )
        d = diameter(graph, exact=n <= 400)
        cm = CostModel(n=n, diameter=d)
        labeling = build_distance_labeling(instance, config=_config(seed), cost_model=cm)
        general = general_graph_exact_sssp_rounds(n, d)
        table.add(
            n=n,
            D=d,
            tau_ub=treewidth_upper_bound(graph),
            framework_rounds=labeling.rounds,
            general_exact_sssp=round(general),
            advantage=round(general / max(1, labeling.rounds), 3),
        )
    return table
