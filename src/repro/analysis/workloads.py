"""Standard workload specifications for the experiments.

A :class:`WorkloadSpec` names a graph family with fixed parameters and a
seed, and can materialise the undirected communication graph or a weighted
directed instance on demand.  The ``standard_workloads`` factory enumerates
the sweeps used by the benchmark harness (varying n at fixed treewidth,
varying treewidth at fixed n, varying diameter, bipartite families, …).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.graphs import generators
from repro.graphs.digraph import WeightedDiGraph
from repro.graphs.graph import Graph
from repro.graphs.properties import diameter
from repro.graphs.treewidth import treewidth_upper_bound


@dataclass
class WorkloadSpec:
    """A named workload: a graph family with concrete parameters.

    Attributes
    ----------
    name:
        Human-readable identifier (appears in result tables).
    family:
        Family key: ``"partial_k_tree"``, ``"k_tree"``, ``"grid"``,
        ``"cycle_chords"``, ``"series_parallel"``, ``"caterpillar"``,
        ``"banded_bipartite"``, ``"subdivided_k_tree"``.
    params:
        Family-specific parameters.
    seed:
        Seed for the generator's randomness.
    """

    name: str
    family: str
    params: Dict[str, int] = field(default_factory=dict)
    seed: int = 0

    # ------------------------------------------------------------------ #
    def build_graph(self) -> Graph:
        """Materialise the undirected communication graph."""
        p = self.params
        if self.family == "partial_k_tree":
            return generators.partial_k_tree(
                p["n"], p["k"], edge_keep_prob=p.get("keep", 70) / 100.0, seed=self.seed
            )
        if self.family == "k_tree":
            return generators.k_tree(p["n"], p["k"], seed=self.seed)
        if self.family == "grid":
            return generators.grid_graph(p["rows"], p["cols"])
        if self.family == "cycle_chords":
            return generators.cycle_with_chords(p["n"], p["chords"], seed=self.seed)
        if self.family == "series_parallel":
            return generators.series_parallel_graph(p["n"], seed=self.seed)
        if self.family == "caterpillar":
            return generators.caterpillar_graph(p["spine"], p.get("legs", 1))
        if self.family == "banded_bipartite":
            return generators.random_banded_bipartite(
                p["left"], p["right"], band=p.get("band", 3), seed=self.seed
            )
        if self.family == "subdivided_k_tree":
            base = generators.partial_k_tree(p["n"], p["k"], seed=self.seed)
            return generators.subdivided_graph(base)
        raise ValueError(f"unknown workload family {self.family!r}")

    def build_instance(
        self,
        weight_range: Tuple[int, int] = (1, 10),
        orientation: str = "asymmetric",
    ) -> WeightedDiGraph:
        """Materialise a weighted directed instance of the workload."""
        return generators.to_directed_instance(
            self.build_graph(),
            weight_range=weight_range,
            orientation=orientation,
            seed=self.seed + 1,
        )

    def describe(self) -> Dict[str, float]:
        """Measured structural parameters (n, m, D, treewidth upper bound)."""
        g = self.build_graph()
        return {
            "n": g.num_nodes(),
            "m": g.num_edges(),
            "diameter": diameter(g, exact=g.num_nodes() <= 400),
            "treewidth_ub": treewidth_upper_bound(g),
        }


def workload(name: str, family: str, seed: int = 0, **params: int) -> WorkloadSpec:
    """Convenience constructor for a :class:`WorkloadSpec`."""
    return WorkloadSpec(name=name, family=family, params=dict(params), seed=seed)


def standard_workloads(scale: str = "small") -> List[WorkloadSpec]:
    """The default workload suite used by the benchmark harness.

    ``scale``: ``"small"`` (unit-test friendly), ``"medium"`` (benchmark
    default) or ``"large"`` (longer sweeps for the scaling experiments).
    """
    if scale == "small":
        ns = [40, 80]
        ks = [2, 3]
        grid_cols = [8]
    elif scale == "medium":
        ns = [100, 200, 400]
        ks = [2, 3, 4]
        grid_cols = [10, 20]
    elif scale == "large":
        ns = [200, 400, 800, 1600]
        ks = [2, 3, 4, 6]
        grid_cols = [20, 40]
    else:
        raise ValueError(f"unknown scale {scale!r}")

    specs: List[WorkloadSpec] = []
    for n in ns:
        for k in ks:
            specs.append(workload(f"pkt(n={n},k={k})", "partial_k_tree", seed=n + k, n=n, k=k))
    for cols in grid_cols:
        specs.append(workload(f"grid(5x{cols})", "grid", rows=5, cols=cols))
    specs.append(workload("series_parallel", "series_parallel", seed=7, n=ns[-1]))
    specs.append(
        workload("cycle_chords", "cycle_chords", seed=11, n=ns[-1], chords=4)
    )
    return specs


def sweep_n(fixed_k: int, ns: Iterable[int], seed: int = 0) -> List[WorkloadSpec]:
    """Partial-k-tree workloads sweeping n at a fixed treewidth bound."""
    return [
        workload(f"pkt(n={n},k={fixed_k})", "partial_k_tree", seed=seed + n, n=n, k=fixed_k)
        for n in ns
    ]


def sweep_k(fixed_n: int, ks: Iterable[int], seed: int = 0) -> List[WorkloadSpec]:
    """Partial-k-tree workloads sweeping the treewidth bound at fixed n."""
    return [
        workload(f"pkt(n={fixed_n},k={k})", "partial_k_tree", seed=seed + k, n=fixed_n, k=k)
        for k in ks
    ]


def sweep_diameter(fixed_k: int, spines: Iterable[int]) -> List[WorkloadSpec]:
    """Caterpillar workloads sweeping the diameter at treewidth 1."""
    return [
        workload(f"caterpillar(spine={s})", "caterpillar", spine=s, legs=1) for s in spines
    ]


def bipartite_workloads(scale: str = "small") -> List[WorkloadSpec]:
    """Bipartite workloads for the matching experiments."""
    if scale == "small":
        sizes = [(4, 8), (5, 10)]
        banded = [(20, 20)]
    else:
        sizes = [(6, 15), (8, 20), (10, 30)]
        banded = [(40, 40), (80, 80)]
    specs = [
        workload(f"grid({r}x{c})", "grid", rows=r, cols=c) for r, c in sizes
    ]
    for left, right in banded:
        specs.append(
            workload(
                f"banded({left}x{right})",
                "banded_bipartite",
                seed=left,
                left=left,
                right=right,
                band=3,
            )
        )
    specs.append(workload("subdivided_pkt", "subdivided_k_tree", seed=3, n=40, k=3))
    return specs
