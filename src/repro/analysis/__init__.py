"""Experiment harness: workloads, runners, result tables and scaling fits.

The paper contains no empirical tables; the experiments here validate its
quantitative theoretical claims (see DESIGN.md §3 for the experiment index
E1–E9 and EXPERIMENTS.md for recorded results).  Each ``run_*`` function in
:mod:`~repro.analysis.experiments` executes one experiment and returns a
:class:`~repro.analysis.records.ResultTable` that can be printed, converted
to CSV/markdown, or asserted on in benchmarks.
"""

from repro.analysis.records import ResultTable, ExperimentRecord
from repro.analysis.workloads import standard_workloads, workload, WorkloadSpec
from repro.analysis.complexity import fit_power_law, fit_linear
from repro.analysis import experiments

__all__ = [
    "ResultTable",
    "ExperimentRecord",
    "standard_workloads",
    "workload",
    "WorkloadSpec",
    "fit_power_law",
    "fit_linear",
    "experiments",
]
