"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so that callers can
catch a single base class.  Errors are deliberately fine-grained: algorithmic
failures (e.g. a randomized separator run that did not succeed) are distinct
from usage errors (bad arguments, malformed graphs), which in turn are distinct
from simulator violations (bandwidth overruns in the CONGEST simulator).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """A graph argument is malformed or violates a documented precondition."""


class NotBipartiteError(GraphError):
    """An algorithm requiring a bipartite input graph received a non-bipartite one."""


class DisconnectedGraphError(GraphError):
    """An algorithm requiring a connected input graph received a disconnected one."""


class DecompositionError(ReproError):
    """A tree decomposition or separator is invalid or could not be produced."""


class SeparatorFailure(DecompositionError):
    """The randomized separator algorithm ``Sep`` failed for the current width guess.

    The caller (typically the doubling loop) is expected to retry with a larger
    width parameter ``t``; this exception escaping to user code indicates the
    doubling loop itself was exhausted, which should be impossible for valid
    inputs.
    """


class LabelingError(ReproError):
    """A distance label is malformed or a decode was attempted with incompatible labels."""


class ConstraintError(ReproError):
    """A stateful walk constraint definition violates Definition 2 of the paper."""


class SimulationError(ReproError):
    """The CONGEST simulator detected a protocol violation (e.g. oversized message)."""


class BandwidthExceededError(SimulationError):
    """A node attempted to send more than the per-edge per-round bandwidth budget."""


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its round/iteration budget."""
