"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so that callers can
catch a single base class.  Errors are deliberately fine-grained: algorithmic
failures (e.g. a randomized separator run that did not succeed) are distinct
from usage errors (bad arguments, malformed graphs), which in turn are distinct
from simulator violations (bandwidth overruns in the CONGEST simulator).

The full hierarchy::

    ReproError
    ├── GraphError              — malformed graph arguments / preconditions
    │   ├── NotBipartiteError   — bipartite input required
    │   └── DisconnectedGraphError — connected input required
    ├── DecompositionError      — invalid/unproducible tree decomposition
    │   └── SeparatorFailure    — one randomized ``Sep`` run failed (retryable)
    ├── LabelingError           — malformed labels / incompatible decode
    ├── ConstraintError         — invalid stateful-walk constraint definition
    ├── SimulationError         — CONGEST simulator protocol/usage violation
    │   ├── BandwidthExceededError — per-edge per-round word budget overrun
    │   └── FaultInjectionError — malformed/overlapping fault schedule
    └── ConvergenceError        — round/iteration budget exhausted
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """A graph argument is malformed or violates a documented precondition."""


class NotBipartiteError(GraphError):
    """An algorithm requiring a bipartite input graph received a non-bipartite one."""


class DisconnectedGraphError(GraphError):
    """An algorithm requiring a connected input graph received a disconnected one."""


class DecompositionError(ReproError):
    """A tree decomposition or separator is invalid or could not be produced."""


class SeparatorFailure(DecompositionError):
    """The randomized separator algorithm ``Sep`` failed for the current width guess.

    The caller (typically the doubling loop) is expected to retry with a larger
    width parameter ``t``; this exception escaping to user code indicates the
    doubling loop itself was exhausted, which should be impossible for valid
    inputs.
    """


class LabelingError(ReproError):
    """A distance label is malformed or a decode was attempted with incompatible labels."""


class ConstraintError(ReproError):
    """A stateful walk constraint definition violates Definition 2 of the paper."""


class SimulationError(ReproError):
    """The CONGEST simulator detected a protocol violation (e.g. oversized message)."""


class BandwidthExceededError(SimulationError):
    """A node attempted to send more than the per-edge per-round bandwidth budget."""


class FaultInjectionError(SimulationError):
    """A fault schedule is malformed, overlapping, or unsatisfiable.

    Raised when a :class:`~repro.congest.faults.FaultSchedule` targets
    nodes/edges that do not exist, crashes an element that is already down
    (or recovers one that is up), uses non-positive fault times — or when a
    single-source protocol's source node is crashed with no recovery, so the
    protocol could never reconverge.
    """


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its round/iteration budget."""
