"""Repository-level pytest configuration.

Defines the command-line options shared by the test suite and the benchmark
harness (sub-directory conftests can only add fixtures, not options, because
``pytest_addoption`` must live in an initial conftest):

* ``--seed`` — the single master seed every randomized test/benchmark derives
  its :class:`random.Random` from, so any run is reproducible bit-for-bit by
  re-passing the same value.
* ``--bench-scale`` — ``full`` (default) runs the benchmarks at paper scale;
  ``tiny`` is the CI smoke setting (small instances, shape assertions that
  need large n are skipped).
* ``--shard-transport`` — boundary transport used by the sharded-tier
  equivalence suite: ``shm`` (default, shared-memory arena) or ``socket``
  (localhost TCP).  CI runs the sharded equivalence subset once per value to
  certify both transports bit-for-bit.
"""

from __future__ import annotations

import os
import random
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--seed",
        type=int,
        default=12345,
        help="master seed for all randomized tests and benchmarks",
    )
    parser.addoption(
        "--bench-scale",
        choices=("tiny", "full"),
        default="full",
        help="benchmark instance sizes: 'full' (paper scale) or 'tiny' (CI smoke)",
    )
    parser.addoption(
        "--shard-transport",
        choices=("shm", "socket"),
        default="shm",
        help="boundary transport for the sharded-tier equivalence tests",
    )


@pytest.fixture(scope="session")
def master_seed(request) -> int:
    """The ``--seed`` value; derive every per-test RNG from this."""
    return request.config.getoption("--seed")


@pytest.fixture(scope="session")
def bench_scale(request) -> str:
    """The ``--bench-scale`` value (``"tiny"`` or ``"full"``)."""
    return request.config.getoption("--bench-scale")


@pytest.fixture(scope="session")
def shard_transport(request) -> str:
    """The ``--shard-transport`` value (``"shm"`` or ``"socket"``)."""
    return request.config.getoption("--shard-transport")


@pytest.fixture
def rng(master_seed) -> random.Random:
    """A fresh seeded RNG per test/benchmark, derived from the session ``--seed``.

    Every randomized test and benchmark should draw from this (or spawn
    sub-RNGs from it) so the whole run is reproducible from one option.
    """
    return random.Random(master_seed)
